//! `rx` — the Reflex command-line frontend.
//!
//! ```text
//! rx check   FILE             parse and type-check a kernel
//! rx verify  FILE [PROP]      prove all (or one) of its properties
//! rx watch   FILE             re-verify on every change, reusing proofs
//! rx falsify FILE PROP        search for a concrete counterexample
//! rx explain FILE PROP        print the discovered proof's structure
//! rx show    FILE             pretty-print the kernel and its statistics
//! rx run     FILE [N [SEED]]  boot the kernel and run up to N exchanges
//! rx soak                     soak the bundled kernels under fault injection
//! ```
//!
//! `rx verify --store DIR` and `rx watch --store DIR` persist proof
//! certificates into a content-addressed store, so unchanged properties
//! are reused across processes (every stored certificate is re-validated
//! by the independent checker before being trusted).
//!
//! `rx run` accepts `--faults SPEC --supervise --monitor` to run the
//! kernel under the supervised runtime with deterministic fault
//! injection; `rx soak` drives every bundled Figure-6 kernel that way.
//!
//! Exit codes: 0 success, 1 the kernel/properties have problems,
//! 2 usage errors.

use std::process::ExitCode;

use reflex::bench::soak::{
    render_soak, render_soak_json, run_soak, run_soak_bench, soak_program_with_plan, SoakConfig,
    SoakOutcome,
};
use reflex::runtime::{EmptyWorld, FaultPlan, Interpreter, Registry};
use reflex::typeck::CheckedProgram;
use reflex::verify::{
    check_certificate, check_certificate_with, falsify, prove_all_parallel_with_stats, prove_with,
    verify_with_store, Abstraction, FalsifyOptions, ProofStore, ProverOptions, WatchSession,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rx check   FILE\n  rx verify  FILE [PROP] [--jobs N] [--stats] [--store DIR]\n  rx watch   FILE [--jobs N] [--store DIR] [--interval MS] [--iterations N]\n  rx falsify FILE PROP\n  rx explain FILE PROP\n  rx show    FILE\n  rx run     FILE [STEPS [SEED]] [--faults SPEC] [--supervise] [--monitor]\n  rx soak    [--steps N] [--seed N] [--jobs N] [--kernel NAME] [--fault-rate X]\n             [--no-monitor] [--json] [--incident-dir DIR]\n\n  --jobs N         prove/soak on N worker threads (0: one per CPU)\n  --stats          print prover counters (paths, caches, solver, timing)\n  --store DIR      persist certificates in a content-addressed proof store\n                   and reuse them across runs (stored certificates are\n                   re-validated by the checker before being trusted)\n  --interval MS    watch: change-poll interval (default 200)\n  --iterations N   watch: stop after N verifications (default: run forever)\n  --faults SPEC    deterministic fault plan: `none`, `random:RATE`, or\n                   `STEP:OP;...` with OP in callfail[*N] timeout[*N]\n                   crash[=K] drop[=K] dup[=K] reorder[=K]\n  --supervise      run under the supervisor (retry, restart, rollback);\n                   implied by --faults\n  --monitor        re-check certificates online (implies --supervise)\n  --fault-rate X   per-exchange fault probability for `rx soak` (default 0.01)\n  --incident-dir D write per-kernel incident logs into D"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<CheckedProgram, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kernel");
    let program = reflex::parser::parse_program(name, &src).map_err(|e| format!("{path}: {e}"))?;
    reflex::typeck::check(&program).map_err(|e| format!("{path}: type error: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let result = match (cmd, rest) {
        ("check", [file]) => cmd_check(file),
        ("verify", _) => match parse_verify_args(rest) {
            Some(opts) => cmd_verify(opts),
            None => return usage(),
        },
        ("watch", _) => match parse_watch_args(rest) {
            Some(opts) => cmd_watch(opts),
            None => return usage(),
        },
        ("falsify", [file, prop]) => cmd_falsify(file, prop),
        ("explain", [file, prop]) => cmd_explain(file, prop),
        ("show", [file]) => cmd_show(file),
        ("run", _) => match parse_run_args(rest) {
            Some(opts) => cmd_run(opts),
            None => return usage(),
        },
        ("soak", _) => match parse_soak_args(rest) {
            Some(opts) => cmd_soak(opts),
            None => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rx: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check(file: &str) -> Result<(), String> {
    let checked = load(file)?;
    let p = checked.program();
    println!(
        "{}: ok ({} component types, {} message types, {} state vars, {} handlers, {} properties)",
        file,
        p.components.len(),
        p.messages.len(),
        p.state.len(),
        p.handlers.len(),
        p.properties.len()
    );
    Ok(())
}

/// Options of `rx verify`.
struct VerifyOpts {
    file: String,
    prop: Option<String>,
    jobs: usize,
    stats: bool,
    store: Option<String>,
}

/// Parses `verify` operands: `FILE [PROP] [--jobs N] [--stats]
/// [--store DIR]` in any flag order.
fn parse_verify_args(rest: &[String]) -> Option<VerifyOpts> {
    let mut positional: Vec<&String> = Vec::new();
    let mut jobs = 1usize;
    let mut stats = false;
    let mut store = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => jobs = it.next()?.parse().ok()?,
            "--stats" => stats = true,
            "--store" => store = Some(it.next()?.clone()),
            _ if arg.starts_with("--") => return None,
            _ => positional.push(arg),
        }
    }
    let (file, prop) = match positional.as_slice() {
        [file] => ((*file).clone(), None),
        [file, prop] => ((*file).clone(), Some((*prop).clone())),
        _ => return None,
    };
    Some(VerifyOpts {
        file,
        prop,
        jobs,
        stats,
        store,
    })
}

fn cmd_verify(opts: VerifyOpts) -> Result<(), String> {
    let checked = load(&opts.file)?;
    let options = ProverOptions {
        jobs: opts.jobs,
        ..ProverOptions::default()
    };
    if let Some(dir) = &opts.store {
        if opts.prop.is_some() {
            return Err("--store proves all properties; drop the PROP argument".into());
        }
        return cmd_verify_stored(&checked, &options, dir, opts.jobs);
    }
    let (outcomes, run_stats) = match opts.prop.as_deref() {
        None => {
            let (outcomes, run_stats) =
                prove_all_parallel_with_stats(&checked, &options, opts.jobs);
            (outcomes, Some(run_stats))
        }
        Some(prop) => {
            let abs = Abstraction::build(&checked, &options);
            let outcomes = vec![(
                prop.to_owned(),
                prove_with(&abs, prop, &options).map_err(|e| e.to_string())?,
            )];
            (outcomes, None)
        }
    };
    // One abstraction serves every certificate check below.
    let abs = Abstraction::build(&checked, &options);
    let mut failures = 0;
    for (name, outcome) in outcomes {
        match outcome.certificate() {
            Some(cert) => {
                check_certificate_with(&abs, cert, &options).map_err(|e| format!("{name}: {e}"))?;
                println!(
                    "  ✓ {name}  ({} obligations, certificate checked)",
                    cert.obligation_count()
                );
            }
            None => {
                failures += 1;
                println!("  ✗ {name}");
                println!("      {}", outcome.failure().expect("failed"));
            }
        }
    }
    if opts.stats {
        match run_stats {
            Some(s) => print!("{}", s.render()),
            None => {
                println!("(--stats requires proving all properties; ignored for a single property)")
            }
        }
    }
    if failures > 0 {
        Err(format!("{failures} propert(y/ies) failed to verify"))
    } else {
        println!("all properties verified.");
        Ok(())
    }
}

/// `rx verify --store DIR`: prove through the persistent proof store.
fn cmd_verify_stored(
    checked: &CheckedProgram,
    options: &ProverOptions,
    dir: &str,
    jobs: usize,
) -> Result<(), String> {
    let store = ProofStore::open(dir).map_err(|e| format!("{dir}: {e}"))?;
    let sr = verify_with_store(checked, options, &store, jobs).map_err(|e| e.to_string())?;
    let mut failures = 0;
    for (name, outcome) in &sr.report.outcomes {
        let how = if sr.report.reused.contains(name) {
            " (reused from store, re-checked)"
        } else if sr.report.partial.contains(name) {
            " (patched per-case, re-checked)"
        } else {
            ""
        };
        match outcome.certificate() {
            Some(cert) => {
                println!("  ✓ {name}  ({} obligations){how}", cert.obligation_count());
            }
            None => {
                failures += 1;
                println!("  ✗ {name}");
                println!("      {}", outcome.failure().expect("failed"));
            }
        }
    }
    println!(
        "{} reused, {} patched, {} re-proved ({} loaded from {dir})",
        sr.report.reused.len(),
        sr.report.partial.len(),
        sr.report.reproved.len(),
        sr.loaded
    );
    if failures > 0 {
        Err(format!("{failures} propert(y/ies) failed to verify"))
    } else {
        println!("all properties verified.");
        Ok(())
    }
}

/// Options of `rx watch`.
struct WatchOpts {
    file: String,
    jobs: usize,
    store: Option<String>,
    interval_ms: u64,
    iterations: Option<usize>,
}

/// Parses `watch` operands: `FILE [--jobs N] [--store DIR] [--interval MS]
/// [--iterations N]`.
fn parse_watch_args(rest: &[String]) -> Option<WatchOpts> {
    let mut positional: Vec<&String> = Vec::new();
    let mut jobs = 1usize;
    let mut store = None;
    let mut interval_ms = 200u64;
    let mut iterations = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => jobs = it.next()?.parse().ok()?,
            "--store" => store = Some(it.next()?.clone()),
            "--interval" => interval_ms = it.next()?.parse().ok()?,
            "--iterations" => iterations = Some(it.next()?.parse().ok()?),
            _ if arg.starts_with("--") => return None,
            _ => positional.push(arg),
        }
    }
    let [file] = positional.as_slice() else {
        return None;
    };
    Some(WatchOpts {
        file: (*file).clone(),
        jobs,
        store,
        interval_ms,
        iterations,
    })
}

/// `rx watch FILE`: re-verify on every change to the file, reusing
/// unaffected proofs across iterations (and across restarts with
/// `--store`).
fn cmd_watch(opts: WatchOpts) -> Result<(), String> {
    let store = match &opts.store {
        Some(dir) => Some(ProofStore::open(dir).map_err(|e| format!("{dir}: {e}"))?),
        None => None,
    };
    let mut session = WatchSession::new(ProverOptions::default(), opts.jobs, store);
    let mtime = |path: &str| std::fs::metadata(path).and_then(|m| m.modified()).ok();
    let mut last_seen = None;
    let mut iteration = 0usize;
    let mut last_failures;
    loop {
        let stamp = mtime(&opts.file);
        let changed = stamp != last_seen;
        if changed || iteration == 0 {
            last_seen = stamp;
            iteration += 1;
            match load(&opts.file) {
                Ok(checked) => {
                    let it = session.verify(&checked).map_err(|e| e.to_string())?;
                    last_failures = it.failures();
                    for (name, outcome) in &it.outcomes {
                        match outcome.failure() {
                            None => println!("  ✓ {name}"),
                            Some(f) => println!("  ✗ {name}: {f}"),
                        }
                    }
                    println!("[{iteration}] {}", it.summary());
                }
                Err(e) => {
                    // A half-saved file is normal mid-edit: report and keep
                    // watching.
                    last_failures = 1;
                    println!("[{}] {e}", iteration);
                }
            }
            if opts.iterations.is_some_and(|n| iteration >= n) {
                break;
            }
            println!("watching {} (ctrl-c to stop)…", opts.file);
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
    }
    if last_failures > 0 {
        Err(format!(
            "{last_failures} propert(y/ies) failed in the last iteration"
        ))
    } else {
        Ok(())
    }
}

fn cmd_falsify(file: &str, prop: &str) -> Result<(), String> {
    let checked = load(file)?;
    if checked.program().property(prop).is_none() {
        return Err(format!("no property named `{prop}`"));
    }
    match falsify(&checked, prop, &FalsifyOptions::default()) {
        Some(cx) => {
            println!("{cx}");
            Ok(())
        }
        None => {
            println!(
                "no counterexample within bounds (this is NOT a proof — run `rx verify {file} {prop}`)"
            );
            Ok(())
        }
    }
}

fn cmd_explain(file: &str, prop: &str) -> Result<(), String> {
    let checked = load(file)?;
    let options = ProverOptions::default();
    let abs = Abstraction::build(&checked, &options);
    let outcome = prove_with(&abs, prop, &options).map_err(|e| e.to_string())?;
    match outcome.certificate() {
        Some(cert) => {
            check_certificate(&checked, cert, &options).map_err(|e| e.to_string())?;
            print!("{}", cert.render_proof_sketch());
            Ok(())
        }
        None => Err(format!(
            "`{prop}` did not verify: {}",
            outcome.failure().expect("failed")
        )),
    }
}

fn cmd_show(file: &str) -> Result<(), String> {
    let checked = load(file)?;
    print!("{}", checked.program());
    let options = ProverOptions::default();
    let abs = Abstraction::build(&checked, &options);
    println!(
        "\n// behavioral abstraction: {} world(s), {} exchange case(s), {} symbolic path(s)",
        abs.worlds.len(),
        abs.worlds.iter().map(|w| w.exchanges.len()).sum::<usize>(),
        abs.path_count()
    );
    Ok(())
}

/// Options of `rx run`.
struct RunOpts {
    file: String,
    steps: usize,
    seed: u64,
    faults: Option<String>,
    supervise: bool,
    monitor: bool,
}

/// Parses `run` operands: `FILE [STEPS [SEED]]` plus `--faults SPEC`,
/// `--supervise`, `--monitor` in any order.
fn parse_run_args(rest: &[String]) -> Option<RunOpts> {
    let mut positional: Vec<&String> = Vec::new();
    let mut faults = None;
    let mut supervise = false;
    let mut monitor = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--faults" => faults = Some(it.next()?.clone()),
            "--supervise" => supervise = true,
            "--monitor" => monitor = true,
            _ if arg.starts_with("--") => return None,
            _ => positional.push(arg),
        }
    }
    let (file, steps, seed) = match positional.as_slice() {
        [file] => ((*file).clone(), 64, 0),
        [file, steps] => ((*file).clone(), steps.parse().ok()?, 0),
        [file, steps, seed] => ((*file).clone(), steps.parse().ok()?, seed.parse().ok()?),
        _ => return None,
    };
    Some(RunOpts {
        file,
        steps,
        seed,
        supervise: supervise || monitor || faults.is_some(),
        faults,
        monitor,
    })
}

fn cmd_run(opts: RunOpts) -> Result<(), String> {
    let checked = load(&opts.file)?;
    if opts.supervise {
        return cmd_run_supervised(&opts, &checked);
    }
    let mut kernel = Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), opts.seed)
        .map_err(|e| e.to_string())?;
    let n = kernel.run(opts.steps).map_err(|e| e.to_string())?;
    println!("ran init + {n} exchange(s); trace:");
    print!("{}", kernel.trace());
    reflex::runtime::oracle::check_trace_inclusion(&checked, kernel.trace())
        .map_err(|e| e.to_string())?;
    println!("trace ⊆ BehAbs ✓");
    Ok(())
}

/// `rx run --faults/--supervise/--monitor`: drive the kernel with the
/// soak workload under the supervised runtime.
fn cmd_run_supervised(opts: &RunOpts, checked: &CheckedProgram) -> Result<(), String> {
    let spec = opts.faults.as_deref().unwrap_or("none");
    let plan = FaultPlan::parse(spec, opts.seed).map_err(|e| format!("--faults: {e}"))?;
    let cfg = SoakConfig {
        steps: opts.steps,
        seed: opts.seed,
        monitor: opts.monitor,
        world_fault_rate: 0.0,
        ..SoakConfig::default()
    };
    let outcome = soak_program_with_plan(&opts.file, checked, &cfg, 0, Some(plan));
    println!(
        "supervised run of {}: {} exchange(s), {} injected message(s), trace length {}",
        opts.file, outcome.steps, outcome.injected, outcome.trace_len
    );
    if outcome.incidents > 0 {
        println!("incidents ({}):", outcome.incidents);
        print!("{}", outcome.incident_log);
    } else {
        println!("incidents: none");
    }
    if opts.monitor && outcome.failure.is_none() {
        println!("monitor: no certificate violations ✓");
    }
    if let Some(f) = &outcome.failure {
        return Err(f.clone());
    }
    if outcome.unrecovered > 0 {
        return Err(format!(
            "{} component(s) still crashed after cooldown",
            outcome.unrecovered
        ));
    }
    Ok(())
}

/// Options of `rx soak`.
struct SoakOpts {
    cfg: SoakConfig,
    kernel: Option<String>,
    json: bool,
    incident_dir: Option<String>,
}

fn parse_soak_args(rest: &[String]) -> Option<SoakOpts> {
    let mut cfg = SoakConfig::default();
    let mut kernel = None;
    let mut json = false;
    let mut incident_dir = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--steps" => cfg.steps = it.next()?.parse().ok()?,
            "--seed" => cfg.seed = it.next()?.parse().ok()?,
            "--jobs" => cfg.jobs = it.next()?.parse().ok()?,
            "--fault-rate" => cfg.fault_rate = it.next()?.parse().ok()?,
            "--no-monitor" => cfg.monitor = false,
            "--kernel" => kernel = Some(it.next()?.clone()),
            "--json" => json = true,
            "--incident-dir" => incident_dir = Some(it.next()?.clone()),
            _ => return None,
        }
    }
    Some(SoakOpts {
        cfg,
        kernel,
        json,
        incident_dir,
    })
}

fn cmd_soak(opts: SoakOpts) -> Result<(), String> {
    let outcomes: Vec<SoakOutcome> = if let Some(name) = &opts.kernel {
        let benches = reflex::kernels::all_benchmarks();
        let (index, bench) = benches
            .iter()
            .enumerate()
            .find(|(_, b)| b.name == *name)
            .ok_or_else(|| format!("no bundled kernel named `{name}`"))?;
        vec![reflex::bench::soak::soak_kernel(bench, &opts.cfg, index)]
    } else if opts.json {
        let bench = run_soak_bench(&opts.cfg);
        let doc = render_soak_json(&bench);
        std::fs::write("BENCH_soak.json", &doc).map_err(|e| format!("BENCH_soak.json: {e}"))?;
        println!(
            "with monitor {:.1} steps/s, without {:.1} steps/s (overhead {:.2}x) -> wrote BENCH_soak.json",
            bench.monitored_throughput(),
            bench.unmonitored_throughput(),
            if bench.unmonitored_ms > 0.0 {
                bench.monitored_ms / bench.unmonitored_ms
            } else {
                0.0
            }
        );
        bench.monitored
    } else {
        run_soak(&opts.cfg)
    };
    print!("{}", render_soak(&outcomes));
    if let Some(dir) = &opts.incident_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
        for o in &outcomes {
            let path = format!("{dir}/{}.log", o.kernel);
            std::fs::write(&path, &o.incident_log).map_err(|e| format!("{path}: {e}"))?;
        }
        println!("incident logs written to {dir}/");
    }
    let bad: Vec<&SoakOutcome> = outcomes
        .iter()
        .filter(|o| o.failure.is_some() || o.unrecovered > 0)
        .collect();
    if bad.is_empty() {
        println!(
            "soak ok: {} kernel(s), {} exchange(s) total, all faults recovered{}",
            outcomes.len(),
            outcomes.iter().map(|o| o.steps).sum::<usize>(),
            if opts.cfg.monitor {
                ", no certificate violations"
            } else {
                " (monitor off)"
            }
        );
        Ok(())
    } else {
        Err(format!(
            "soak failed for {}",
            bad.iter()
                .map(|o| o.kernel.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }
}
