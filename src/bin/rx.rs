//! `rx` — the Reflex command-line frontend.
//!
//! ```text
//! rx check   FILE             parse and type-check a kernel
//! rx verify  FILE [PROP]      prove all (or one) of its properties
//! rx watch   FILE             re-verify on every change, reusing proofs
//! rx falsify FILE PROP        search for a concrete counterexample
//! rx explain FILE PROP        print the discovered proof's structure
//! rx show    FILE             pretty-print the kernel and its statistics
//! rx run     FILE [N [SEED]]  boot the kernel and run up to N exchanges
//! rx soak                     soak the bundled kernels under fault injection
//! rx chaos                    replay the watch loop under injected store faults
//! rx sim     run              drive one deterministic whole-stack scenario
//! rx sim     swarm            fan a seed range across every scenario (CI)
//! rx sim     replay FILE      re-execute a repro.json bit for bit
//! rx store   scrub DIR [FILE] validate a proof store, quarantining bad entries
//! rx store   compact DIR      rewrite live entries into fresh segments
//! rx store   migrate DIR      fold a flat-layout store into segment logs
//! rx store   stat DIR         entry/segment/shard counts and index cost
//! rx gen     PRESET           emit a deterministic synthetic kernel
//! rx bench   scale            prove the generated presets, report throughput
//! rx bench   store            flat vs log-structured store throughput
//! rx bench   serve            storm a daemon, report req/s and latency
//! rx client  ACTION           talk to a running rxd daemon
//! ```
//!
//! Every verifying subcommand is a thin client of the resident service
//! core ([`reflex::service::ServiceCore`]): `rx check`, `rx verify` and
//! `rx watch` boot an in-process core and run as its client, so a local
//! one-shot run and a request served by a long-lived `rxd` daemon take
//! the same code path (and produce byte-identical certificates).
//! `rx verify --store DIR` and `rx watch --store DIR` persist proof
//! certificates into a content-addressed store,
//! `--budget-ms`/`--budget-nodes` bound the whole session (a stuck
//! property reports a timeout instead of hanging), and
//! `--trace-json PATH` streams the session's structured stage/property
//! events as JSON lines. `rx client ACTION --socket PATH | --tcp ADDR`
//! sends the same requests to an already-running `rxd`; `rx bench serve`
//! storms one with concurrent clients and writes `BENCH_serve.json`.
//!
//! `rx run` accepts `--faults SPEC --supervise --monitor` to run the
//! kernel under the supervised runtime with deterministic fault
//! injection; `rx soak` drives every bundled Figure-6 kernel that way.
//! `rx chaos` replays the scripted incremental session with the proof
//! store on a seeded faulty filesystem and checks the robustness
//! invariants (no aborts, no wrong reuse, no quarantine escapes);
//! `rx store scrub` audits a store directory in place. Both `rx chaos`
//! and `rx soak` are presets over the deterministic simulator's engine
//! surface (`reflex::sim::presets`); `rx sim` is the simulator's own
//! front door — one root seed drives every fault stream through a
//! virtual clock, every run leaves a replayable trace, and violations
//! are auto-shrunk into `repro.json` files `rx sim replay` re-executes.
//!
//! Exit codes: 0 success, 1 the kernel/properties have problems,
//! 2 usage errors.

use std::process::ExitCode;
use std::sync::Arc;

use reflex::bench::soak::soak_program_with_plan;
use reflex::cli::{self, FlagSpec};
use reflex::driver::{
    load_program, Instrument, JsonLinesSink, NullSink, SessionConfig, SessionError, VerifySession,
};
use reflex::runtime::{EmptyWorld, FaultPlan, Interpreter, Registry};
use reflex::service::{
    Client, ClientError, Endpoint, Reply, Request, RetryPolicy, RetryingClient, ServiceConfig,
    ServiceCore, ServiceError, StatsSnapshot,
};
use reflex::sim::presets::{
    render_soak, render_soak_json, run_soak_bench_preset, run_soak_preset, SoakConfig, SoakOutcome,
};
use reflex::typeck::CheckedProgram;
use reflex::verify::{falsify, FalsifyOptions, ProverOptions};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rx check   FILE\n  rx verify  FILE [PROP] [--jobs N] [--stats] [--json] [--store DIR]\n             [--trace-json PATH] [--budget-ms MS] [--budget-nodes N]\n  rx watch   FILE [--jobs N] [--store DIR] [--strict-store] [--interval MS]\n             [--iterations N] [--budget-ms MS] [--budget-nodes N]\n  rx falsify FILE PROP\n  rx explain FILE PROP\n  rx show    FILE\n  rx run     FILE [STEPS [SEED]] [--faults SPEC] [--supervise] [--monitor]\n  rx soak    [--steps N] [--seed N] [--jobs N] [--kernel NAME] [--fault-rate X]\n             [--no-monitor] [--json] [--incident-dir DIR]\n  rx chaos   [--seeds A..B] [--rate PPM] [--jobs N] [--gen SEED]\n  rx sim     run [--scenario NAME] [--seed N] [--steps K] [--inject-at K]\n  rx sim     swarm [--seeds A..B] [--scenario NAME] [--steps K] [--jobs N]\n             [--json] [--repro-dir DIR]\n  rx sim     replay FILE\n  rx store   scrub|compact DIR [FILE] [--json]\n  rx store   migrate|stat DIR [--json]\n  rx gen     [PRESET] [--seed N] [--variant V] [--out PATH] [--check]\n  rx bench   scale [--seed N] [--jobs N] [--preset NAME] [--json]\n  rx bench   store [--entries N] [--lookups N] [--seed N] [--json]\n  rx bench   serve [--clients N] [--requests N] [--socket PATH | --tcp ADDR]\n             [--jobs N] [--json] [--overload]\n  rx client  ping|stats|shutdown|check FILE|verify FILE [PROP]\n             (--socket PATH | --tcp ADDR) [--json] [--stats]\n             [--budget-ms MS] [--budget-nodes N] [--deadline-ms MS]\n             [--trace-json PATH] [--retries N] [--retry-base-ms MS]\n             [--retry-seed N]\n\nrun `rx SUBCOMMAND --help` is not supported; each subcommand reports its\nown flags on a usage error."
    );
    ExitCode::from(2)
}

/// Prints a subcommand-specific usage error (bad flag, bad arity, bad
/// value) with the subcommand's synopsis and flag table.
fn usage_error(cmd: &str, synopsis: &str, flags: &[FlagSpec], message: &str) -> ExitCode {
    eprint!(
        "rx {cmd}: {message}\nusage: rx {cmd} {synopsis}\n{}",
        cli::render_flag_help(flags)
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let spec: &CommandSpec = match COMMANDS.iter().find(|s| s.name == cmd) {
        Some(s) => s,
        None => return usage(),
    };
    let parsed = match cli::parse(spec.flags, rest) {
        Ok(p) => p,
        Err(e) => return usage_error(spec.name, spec.synopsis, spec.flags, &e),
    };
    match (spec.run)(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => usage_error(spec.name, spec.synopsis, spec.flags, &e),
        Err(CliError::Run(e)) => {
            eprintln!("rx: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Retry(e)) => {
            eprintln!("rx: {e} (retryable; try again)");
            ExitCode::from(3)
        }
    }
}

/// How a subcommand run can fail: a usage problem (exit 2, with the
/// subcommand's flag help), a fatal runtime failure (exit 1), or a
/// transient failure worth retrying — daemon busy/overloaded, transport
/// lost — (exit 3, so scripts can distinguish "try later" from
/// "broken").
enum CliError {
    Usage(String),
    Run(String),
    Retry(String),
}

impl CliError {
    fn run(e: impl std::fmt::Display) -> CliError {
        CliError::Run(e.to_string())
    }
}

/// One subcommand: its flag table, synopsis and entry point.
struct CommandSpec {
    name: &'static str,
    synopsis: &'static str,
    flags: &'static [FlagSpec],
    run: fn(&cli::Parsed) -> Result<(), CliError>,
}

const NO_FLAGS: &[FlagSpec] = &[];

const VERIFY_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--jobs",
        value: Some("N"),
        help: "prove on N worker threads (0: one per CPU)",
    },
    FlagSpec {
        name: "--stats",
        value: None,
        help: "print prover counters (paths, caches, solver, timing)",
    },
    FlagSpec {
        name: "--json",
        value: None,
        help: "print the session report as one JSON document",
    },
    FlagSpec {
        name: "--store",
        value: Some("DIR"),
        help: "persist certificates in a content-addressed proof store",
    },
    FlagSpec {
        name: "--trace-json",
        value: Some("PATH"),
        help: "stream per-stage/per-property events to PATH as JSON lines",
    },
    FlagSpec {
        name: "--budget-ms",
        value: Some("MS"),
        help: "wall-clock budget for the whole session (reports timeouts)",
    },
    FlagSpec {
        name: "--budget-nodes",
        value: Some("N"),
        help: "explored-path budget for the whole session",
    },
];

const WATCH_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--jobs",
        value: Some("N"),
        help: "prove on N worker threads (0: one per CPU)",
    },
    FlagSpec {
        name: "--store",
        value: Some("DIR"),
        help: "reuse certificates across restarts through a proof store",
    },
    FlagSpec {
        name: "--strict-store",
        value: None,
        help: "fail instead of starting degraded when the store won't open",
    },
    FlagSpec {
        name: "--interval",
        value: Some("MS"),
        help: "change-poll interval (default 200)",
    },
    FlagSpec {
        name: "--iterations",
        value: Some("N"),
        help: "stop after N verifications (default: run forever)",
    },
    FlagSpec {
        name: "--budget-ms",
        value: Some("MS"),
        help: "wall-clock budget per iteration's session",
    },
    FlagSpec {
        name: "--budget-nodes",
        value: Some("N"),
        help: "explored-path budget per iteration's session",
    },
];

const RUN_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--faults",
        value: Some("SPEC"),
        help: "deterministic fault plan: none | random:RATE | STEP:OP;...",
    },
    FlagSpec {
        name: "--supervise",
        value: None,
        help: "run under the supervisor (implied by --faults)",
    },
    FlagSpec {
        name: "--monitor",
        value: None,
        help: "re-check certificates online (implies --supervise)",
    },
];

const SOAK_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--steps",
        value: Some("N"),
        help: "exchanges per kernel",
    },
    FlagSpec {
        name: "--seed",
        value: Some("N"),
        help: "deterministic seed",
    },
    FlagSpec {
        name: "--jobs",
        value: Some("N"),
        help: "soak kernels on N worker threads",
    },
    FlagSpec {
        name: "--fault-rate",
        value: Some("X"),
        help: "per-exchange fault probability (default 0.01)",
    },
    FlagSpec {
        name: "--no-monitor",
        value: None,
        help: "skip online certificate re-checking",
    },
    FlagSpec {
        name: "--kernel",
        value: Some("NAME"),
        help: "soak only the named bundled kernel",
    },
    FlagSpec {
        name: "--json",
        value: None,
        help: "measure monitored vs unmonitored and write BENCH_soak.json",
    },
    FlagSpec {
        name: "--incident-dir",
        value: Some("DIR"),
        help: "write per-kernel incident logs into DIR",
    },
];

const CHAOS_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--seeds",
        value: Some("A..B"),
        help: "fault-schedule seed range to replay (default 0..8)",
    },
    FlagSpec {
        name: "--rate",
        value: Some("PPM"),
        help: "per-operation fault rate, parts per million (default 50000)",
    },
    FlagSpec {
        name: "--jobs",
        value: Some("N"),
        help: "prove on N worker threads (0: one per CPU)",
    },
    FlagSpec {
        name: "--gen",
        value: Some("SEED"),
        help: "replay a generated kernel (small preset, seed SEED) instead of fig6",
    },
];

const SIM_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--scenario",
        value: Some("NAME"),
        help: "chaos | watch | soak | scale-edits | compaction-race | client-storm \
               | daemon-crash-restart | net-partition | slow-client (swarm default: all)",
    },
    FlagSpec {
        name: "--seed",
        value: Some("N"),
        help: "root seed for `sim run` (default 0)",
    },
    FlagSpec {
        name: "--seeds",
        value: Some("A..B"),
        help: "seed range for `sim swarm` (default 0..16)",
    },
    FlagSpec {
        name: "--steps",
        value: Some("K"),
        help: "scenario steps per run (default: per-scenario)",
    },
    FlagSpec {
        name: "--fs-rate",
        value: Some("PPM"),
        help: "store-filesystem fault rate, parts per million (default 50000)",
    },
    FlagSpec {
        name: "--panic-rate",
        value: Some("PPM"),
        help: "prover panic-injection rate, parts per million (default 20000)",
    },
    FlagSpec {
        name: "--inject-at",
        value: Some("K"),
        help: "deliberately violate an invariant at step K (shrink/replay demo)",
    },
    FlagSpec {
        name: "--jobs",
        value: Some("N"),
        help: "swarm worker threads (0: one per CPU; results are identical)",
    },
    FlagSpec {
        name: "--json",
        value: None,
        help: "for `sim swarm`: also write BENCH_sim.json",
    },
    FlagSpec {
        name: "--repro-dir",
        value: Some("DIR"),
        help: "for `sim swarm`: write repro-*.json for violating runs into DIR",
    },
];

const GEN_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--seed",
        value: Some("N"),
        help: "generator seed (default 1)",
    },
    FlagSpec {
        name: "--variant",
        value: Some("V"),
        help: "append V deterministic edit variants (default 0: base kernel)",
    },
    FlagSpec {
        name: "--out",
        value: Some("PATH"),
        help: "write the kernel to PATH instead of stdout",
    },
    FlagSpec {
        name: "--check",
        value: None,
        help: "parse and type-check the generated kernel before emitting",
    },
];

const STORE_FLAGS: &[FlagSpec] = &[FlagSpec {
    name: "--json",
    value: None,
    help: "print the stat/scrub report as JSON instead of text",
}];

const BENCH_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--seed",
        value: Some("N"),
        help: "generator seed (default 1)",
    },
    FlagSpec {
        name: "--jobs",
        value: Some("N"),
        help: "prove on N worker threads (0: one per CPU)",
    },
    FlagSpec {
        name: "--preset",
        value: Some("NAME"),
        help: "measure only this preset (small | medium | large)",
    },
    FlagSpec {
        name: "--json",
        value: None,
        help: "also write BENCH_scale.json / BENCH_store.json",
    },
    FlagSpec {
        name: "--entries",
        value: Some("N"),
        help: "bench store: certificates to write (default 100000)",
    },
    FlagSpec {
        name: "--lookups",
        value: Some("N"),
        help: "bench store: warm lookups to time (default 200000)",
    },
    FlagSpec {
        name: "--clients",
        value: Some("N"),
        help: "bench serve: concurrent client connections (default 8)",
    },
    FlagSpec {
        name: "--requests",
        value: Some("N"),
        help: "bench serve: verify requests per client (default 16)",
    },
    FlagSpec {
        name: "--socket",
        value: Some("PATH"),
        help: "bench serve: storm the daemon on this unix socket",
    },
    FlagSpec {
        name: "--tcp",
        value: Some("ADDR"),
        help: "bench serve: storm the daemon at this TCP address",
    },
    FlagSpec {
        name: "--overload",
        value: None,
        help: "bench serve: also drive 4x capacity with and without shedding",
    },
];

const CLIENT_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--socket",
        value: Some("PATH"),
        help: "connect to the daemon's unix socket at PATH",
    },
    FlagSpec {
        name: "--tcp",
        value: Some("ADDR"),
        help: "connect to the daemon at a TCP address, e.g. 127.0.0.1:7171",
    },
    FlagSpec {
        name: "--stats",
        value: None,
        help: "for verify: print prover counters from the daemon's report",
    },
    FlagSpec {
        name: "--json",
        value: None,
        help: "print the report (verify) or counters (stats) as JSON",
    },
    FlagSpec {
        name: "--trace-json",
        value: Some("PATH"),
        help: "for verify: stream the daemon's events to PATH as JSON lines",
    },
    FlagSpec {
        name: "--budget-ms",
        value: Some("MS"),
        help: "for verify: wall-clock budget (the daemon may clamp it)",
    },
    FlagSpec {
        name: "--budget-nodes",
        value: Some("N"),
        help: "for verify: explored-path budget (the daemon may clamp it)",
    },
    FlagSpec {
        name: "--deadline-ms",
        value: Some("MS"),
        help: "for verify: whole-request deadline; expiry yields a typed reply",
    },
    FlagSpec {
        name: "--retries",
        value: Some("N"),
        help: "retry transient failures up to N times (default 3; 0 disables)",
    },
    FlagSpec {
        name: "--retry-base-ms",
        value: Some("MS"),
        help: "first-retry backoff, doubling per retry, capped at 1000 (default 25)",
    },
    FlagSpec {
        name: "--retry-seed",
        value: Some("N"),
        help: "seed for the deterministic backoff jitter and idempotency keys",
    },
];

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "check",
        synopsis: "FILE",
        flags: NO_FLAGS,
        run: cmd_check,
    },
    CommandSpec {
        name: "verify",
        synopsis: "FILE [PROP]",
        flags: VERIFY_FLAGS,
        run: cmd_verify,
    },
    CommandSpec {
        name: "watch",
        synopsis: "FILE",
        flags: WATCH_FLAGS,
        run: cmd_watch,
    },
    CommandSpec {
        name: "falsify",
        synopsis: "FILE PROP",
        flags: NO_FLAGS,
        run: cmd_falsify,
    },
    CommandSpec {
        name: "explain",
        synopsis: "FILE PROP",
        flags: NO_FLAGS,
        run: cmd_explain,
    },
    CommandSpec {
        name: "show",
        synopsis: "FILE",
        flags: NO_FLAGS,
        run: cmd_show,
    },
    CommandSpec {
        name: "run",
        synopsis: "FILE [STEPS [SEED]]",
        flags: RUN_FLAGS,
        run: cmd_run,
    },
    CommandSpec {
        name: "soak",
        synopsis: "",
        flags: SOAK_FLAGS,
        run: cmd_soak,
    },
    CommandSpec {
        name: "chaos",
        synopsis: "",
        flags: CHAOS_FLAGS,
        run: cmd_chaos,
    },
    CommandSpec {
        name: "sim",
        synopsis: "run | swarm | replay FILE",
        flags: SIM_FLAGS,
        run: cmd_sim,
    },
    CommandSpec {
        name: "store",
        synopsis: "scrub|compact|migrate|stat DIR [FILE]",
        flags: STORE_FLAGS,
        run: cmd_store,
    },
    CommandSpec {
        name: "gen",
        synopsis: "PRESET",
        flags: GEN_FLAGS,
        run: cmd_gen,
    },
    CommandSpec {
        name: "bench",
        synopsis: "scale | store | serve",
        flags: BENCH_FLAGS,
        run: cmd_bench,
    },
    CommandSpec {
        name: "client",
        synopsis: "ping|stats|shutdown|check FILE|verify FILE [PROP]",
        flags: CLIENT_FLAGS,
        run: cmd_client,
    },
];

/// Exactly one positional operand, as a usage-class error otherwise.
fn one_positional<'p>(parsed: &'p cli::Parsed, what: &str) -> Result<&'p str, CliError> {
    match parsed.positional.as_slice() {
        [one] => Ok(one),
        _ => Err(CliError::Usage(format!("expected exactly one {what}"))),
    }
}

fn two_positionals(parsed: &cli::Parsed) -> Result<(&str, &str), CliError> {
    match parsed.positional.as_slice() {
        [file, prop] => Ok((file, prop)),
        _ => Err(CliError::Usage("expected FILE and PROP operands".into())),
    }
}

fn load(path: &str) -> Result<CheckedProgram, CliError> {
    load_program(path).map_err(CliError::run)
}

/// The event sink `--trace-json PATH` selects (a no-op sink otherwise).
/// Shared (`Arc`) because the service core streams events from its
/// worker threads.
fn make_sink(parsed: &cli::Parsed) -> Result<Arc<dyn Instrument + Send>, CliError> {
    match parsed.value("--trace-json") {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| CliError::Run(format!("{path}: {e}")))?;
            Ok(Arc::new(JsonLinesSink::new(file)))
        }
        None => Ok(Arc::new(NullSink)),
    }
}

/// Reads a kernel file into (program name, source) the way the service
/// protocol wants it: the program is named after the file stem.
fn read_kernel(path: &str) -> Result<(String, String), CliError> {
    let source =
        std::fs::read_to_string(path).map_err(|e| CliError::Run(format!("{path}: {e}")))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kernel")
        .to_owned();
    Ok((name, source))
}

/// Boots an in-process [`ServiceCore`], runs `f` as its (only) client,
/// and always shuts the core down — draining queued work and
/// group-committing the proof store — before reporting `f`'s result.
/// This is the tentpole's local path: one-shot commands are clients of
/// the same core `rxd` serves remotely.
fn with_core<T>(
    config: ServiceConfig,
    f: impl FnOnce(&ServiceCore) -> Result<T, CliError>,
) -> Result<T, CliError> {
    let core = ServiceCore::start(config).map_err(CliError::run)?;
    let result = f(&core);
    core.shutdown();
    result
}

/// Renders the one-line `rx check` summary (shared with `rx client
/// check`, whose numbers come back over the wire).
fn render_check(file: &str, s: &reflex::service::CheckSummary) -> String {
    format!(
        "{}: ok ({} component types, {} message types, {} state vars, {} handlers, {} properties)",
        file, s.components, s.messages, s.state_vars, s.handlers, s.properties
    )
}

fn cmd_check(parsed: &cli::Parsed) -> Result<(), CliError> {
    let file = one_positional(parsed, "FILE")?;
    let (name, source) = read_kernel(file)?;
    let summary = with_core(ServiceConfig::default(), |core| {
        match core
            .request(0, Request::Check { name, source }, Arc::new(NullSink))
            .map_err(|e| check_error(file, e))?
        {
            Reply::Checked(summary) => Ok(summary),
            _ => Err(CliError::Run("unexpected reply to check".into())),
        }
    })?;
    println!("{}", render_check(file, &summary));
    Ok(())
}

/// Maps a check failure to the one-shot CLI's historical message shape:
/// parse errors carry the offending path as a prefix.
fn check_error(file: &str, e: ServiceError) -> CliError {
    match e {
        ServiceError::Session(SessionError::Parse(message)) => {
            CliError::Run(format!("{file}: {message}"))
        }
        other => CliError::run(other),
    }
}

fn cmd_verify(parsed: &cli::Parsed) -> Result<(), CliError> {
    let (file, prop) = match parsed.positional.as_slice() {
        [file] => (file.as_str(), None),
        [file, prop] => (file.as_str(), Some(prop.clone())),
        _ => return Err(CliError::Usage("expected FILE and optionally PROP".into())),
    };
    if parsed.value("--store").is_some() && prop.is_some() {
        return Err(CliError::Usage(
            "--store proves all properties; drop the PROP argument".into(),
        ));
    }
    let store_mode = parsed.value("--store").is_some();
    let (name, source) = read_kernel(file)?;
    let request = Request::Verify {
        name,
        source,
        property: prop,
        budget_ms: parsed.get_opt("--budget-ms").map_err(CliError::Usage)?,
        budget_nodes: parsed.get_opt("--budget-nodes").map_err(CliError::Usage)?,
        want_events: false,
        deadline_ms: None,
        idempotency_key: None,
    };
    let config = ServiceConfig {
        store_dir: parsed.value("--store").map(str::to_owned),
        jobs: parsed.get("--jobs", 1).map_err(CliError::Usage)?,
        workers: 1,
        ..ServiceConfig::default()
    };
    let sink = make_sink(parsed)?;
    let report = with_core(config, |core| {
        match core.request(0, request, sink).map_err(CliError::run)? {
            Reply::Verify(report) => Ok(*report),
            _ => Err(CliError::Run("unexpected reply to verify".into())),
        }
    })?;
    render_verify_report(parsed, store_mode, &report)
}

/// Renders a verify report and turns proof failures into the exit-1
/// error, identically for the in-process path and `rx client verify`.
fn render_verify_report(
    parsed: &cli::Parsed,
    store_mode: bool,
    report: &reflex::driver::SessionReport,
) -> Result<(), CliError> {
    print!("{}", report.render_properties());
    if store_mode {
        println!("{}", report.summary());
    }
    if parsed.is_set("--stats") {
        print!("{}", report.render_stats());
    }
    if parsed.is_set("--json") {
        println!("{}", report.render_json());
    }
    let failures = report.failures();
    if failures > 0 {
        let timeouts = report.timeouts();
        Err(CliError::Run(if timeouts > 0 {
            format!(
                "{failures} propert(y/ies) failed to verify ({timeouts} stopped by the session budget)"
            )
        } else {
            format!("{failures} propert(y/ies) failed to verify")
        }))
    } else {
        println!("all properties verified.");
        Ok(())
    }
}

/// `rx watch FILE`: re-verify on every change to the file, reusing
/// unaffected proofs across iterations (and across restarts with
/// `--store`). The loop runs over an in-process [`ServiceCore`] whose
/// long-lived env owns the store; a store that cannot open starts the
/// loop degraded (in-memory only) unless `--strict-store` makes it
/// fatal.
fn cmd_watch(parsed: &cli::Parsed) -> Result<(), CliError> {
    let file = one_positional(parsed, "FILE")?;
    let interval_ms: u64 = parsed.get("--interval", 200).map_err(CliError::Usage)?;
    let iterations: Option<usize> = parsed.get_opt("--iterations").map_err(CliError::Usage)?;
    let store_dir = parsed.value("--store").map(str::to_owned);
    let config = ServiceConfig {
        store_dir: store_dir.clone(),
        jobs: parsed.get("--jobs", 1).map_err(CliError::Usage)?,
        workers: 1,
        ..ServiceConfig::default()
    };
    // Mirror the historical degraded-start policy: a store that cannot
    // open is fatal only under --strict-store; otherwise the core boots
    // storeless and the watch loop keeps probing for recovery.
    let (core, open_failure) = match ServiceCore::start(config.clone()) {
        Ok(core) => (core, None),
        Err(SessionError::Store { path, message }) if !parsed.is_set("--strict-store") => {
            let memory_config = ServiceConfig {
                store_dir: None,
                ..config
            };
            let core = ServiceCore::start(memory_config).map_err(CliError::run)?;
            (core, Some(format!("store open failed: {path}: {message}")))
        }
        Err(e) => return Err(CliError::run(e)),
    };
    let mut session = core.watch(
        store_dir,
        parsed.get_opt("--budget-ms").map_err(CliError::Usage)?,
        parsed.get_opt("--budget-nodes").map_err(CliError::Usage)?,
    );
    if let Some(reason) = open_failure
        .as_deref()
        .or_else(|| session.degraded_reason())
    {
        eprintln!(
            "rx watch: warning: starting DEGRADED (in-memory caching only): {reason}\n\
             rx watch: will re-attach the store when it becomes healthy \
             (use --strict-store to make this fatal)"
        );
    }
    let result = (|| {
        let mtime = |path: &str| std::fs::metadata(path).and_then(|m| m.modified()).ok();
        let mut last_seen = None;
        let mut iteration = 0usize;
        let mut last_failures;
        loop {
            let stamp = mtime(file);
            let changed = stamp != last_seen;
            if changed || iteration == 0 {
                last_seen = stamp;
                iteration += 1;
                match load_program(file) {
                    Ok(checked) => {
                        let it = session.verify(&checked, &NullSink).map_err(CliError::run)?;
                        last_failures = it.failures();
                        print!("{}", it.report.render_properties());
                        println!("[{iteration}] {}", it.summary());
                    }
                    Err(e) => {
                        // A half-saved file is normal mid-edit: report and
                        // keep watching.
                        last_failures = 1;
                        println!("[{iteration}] {e}");
                    }
                }
                if iterations.is_some_and(|n| iteration >= n) {
                    break;
                }
                println!("watching {file} (ctrl-c to stop)…");
            }
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
        if last_failures > 0 {
            Err(CliError::Run(format!(
                "{last_failures} propert(y/ies) failed in the last iteration"
            )))
        } else {
            Ok(())
        }
    })();
    core.shutdown();
    result
}

fn cmd_falsify(parsed: &cli::Parsed) -> Result<(), CliError> {
    let (file, prop) = two_positionals(parsed)?;
    let checked = load(file)?;
    if checked.program().property(prop).is_none() {
        return Err(CliError::Run(format!("no property named `{prop}`")));
    }
    match falsify(&checked, prop, &FalsifyOptions::default()) {
        Some(cx) => println!("{cx}"),
        None => println!(
            "no counterexample within bounds (this is NOT a proof — run `rx verify {file} {prop}`)"
        ),
    }
    Ok(())
}

fn cmd_explain(parsed: &cli::Parsed) -> Result<(), CliError> {
    let (file, prop) = two_positionals(parsed)?;
    let config = SessionConfig {
        property: Some(prop.to_owned()),
        ..SessionConfig::default()
    };
    let session = VerifySession::new(config).map_err(CliError::run)?;
    let report = session
        .verify_path(file, &NullSink)
        .map_err(CliError::run)?;
    let Some((_, outcome)) = report.outcomes.first() else {
        return Err(CliError::Run(format!("no outcome for `{prop}`")));
    };
    match outcome.certificate() {
        // The session already validated the certificate with the
        // independent checker.
        Some(cert) => {
            print!("{}", cert.render_proof_sketch());
            Ok(())
        }
        None => Err(CliError::Run(format!(
            "`{prop}` did not verify: {}",
            outcome
                .failure()
                .map(ToString::to_string)
                .unwrap_or_else(|| "no failure recorded".into())
        ))),
    }
}

fn cmd_show(parsed: &cli::Parsed) -> Result<(), CliError> {
    let file = one_positional(parsed, "FILE")?;
    let checked = load(file)?;
    print!("{}", checked.program());
    let options = ProverOptions::default();
    let abs = reflex::verify::Abstraction::build(&checked, &options);
    println!(
        "\n// behavioral abstraction: {} world(s), {} exchange case(s), {} symbolic path(s)",
        abs.worlds.len(),
        abs.worlds.iter().map(|w| w.exchanges.len()).sum::<usize>(),
        abs.path_count()
    );
    Ok(())
}

/// Options of `rx run`, decoded from the parsed flag table.
struct RunOpts {
    file: String,
    steps: usize,
    seed: u64,
    faults: Option<String>,
    supervise: bool,
    monitor: bool,
}

fn run_opts(parsed: &cli::Parsed) -> Result<RunOpts, CliError> {
    let (file, steps, seed) = match parsed.positional.as_slice() {
        [file] => (file.clone(), 64, 0),
        [file, steps] => (
            file.clone(),
            steps
                .parse()
                .map_err(|_| CliError::Usage(format!("STEPS: invalid value `{steps}`")))?,
            0,
        ),
        [file, steps, seed] => (
            file.clone(),
            steps
                .parse()
                .map_err(|_| CliError::Usage(format!("STEPS: invalid value `{steps}`")))?,
            seed.parse()
                .map_err(|_| CliError::Usage(format!("SEED: invalid value `{seed}`")))?,
        ),
        _ => return Err(CliError::Usage("expected FILE [STEPS [SEED]]".into())),
    };
    let faults = parsed.value("--faults").map(str::to_owned);
    let monitor = parsed.is_set("--monitor");
    Ok(RunOpts {
        file,
        steps,
        seed,
        supervise: parsed.is_set("--supervise") || monitor || faults.is_some(),
        faults,
        monitor,
    })
}

fn cmd_run(parsed: &cli::Parsed) -> Result<(), CliError> {
    let opts = run_opts(parsed)?;
    let checked = load(&opts.file)?;
    if opts.supervise {
        return cmd_run_supervised(&opts, &checked);
    }
    let mut kernel = Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), opts.seed)
        .map_err(CliError::run)?;
    let n = kernel.run(opts.steps).map_err(CliError::run)?;
    println!("ran init + {n} exchange(s); trace:");
    print!("{}", kernel.trace());
    reflex::runtime::oracle::check_trace_inclusion(&checked, kernel.trace())
        .map_err(CliError::run)?;
    println!("trace ⊆ BehAbs ✓");
    Ok(())
}

/// `rx run --faults/--supervise/--monitor`: drive the kernel with the
/// soak workload under the supervised runtime.
fn cmd_run_supervised(opts: &RunOpts, checked: &CheckedProgram) -> Result<(), CliError> {
    let spec = opts.faults.as_deref().unwrap_or("none");
    let plan =
        FaultPlan::parse(spec, opts.seed).map_err(|e| CliError::Run(format!("--faults: {e}")))?;
    let cfg = SoakConfig {
        steps: opts.steps,
        seed: opts.seed,
        monitor: opts.monitor,
        world_fault_rate: 0.0,
        ..SoakConfig::default()
    };
    let outcome = soak_program_with_plan(&opts.file, checked, &cfg, 0, Some(plan));
    println!(
        "supervised run of {}: {} exchange(s), {} injected message(s), trace length {}",
        opts.file, outcome.steps, outcome.injected, outcome.trace_len
    );
    if outcome.incidents > 0 {
        println!("incidents ({}):", outcome.incidents);
        print!("{}", outcome.incident_log);
    } else {
        println!("incidents: none");
    }
    if opts.monitor && outcome.failure.is_none() {
        println!("monitor: no certificate violations ✓");
    }
    if let Some(f) = &outcome.failure {
        return Err(CliError::Run(f.clone()));
    }
    if outcome.unrecovered > 0 {
        return Err(CliError::Run(format!(
            "{} component(s) still crashed after cooldown",
            outcome.unrecovered
        )));
    }
    Ok(())
}

/// `rx chaos [--seeds A..B] [--rate PPM] [--jobs N]`: replay the scripted
/// incremental session under seeded store faults, write `BENCH_chaos.json`
/// and fail unless every robustness invariant held.
fn cmd_chaos(parsed: &cli::Parsed) -> Result<(), CliError> {
    use reflex::sim::presets::{render_chaos, render_chaos_json, run_chaos_preset, ChaosConfig};
    if !parsed.positional.is_empty() {
        return Err(CliError::Usage(format!(
            "unexpected operand `{}`",
            parsed.positional[0]
        )));
    }
    let mut cfg = ChaosConfig::default();
    if let Some(spec) = parsed.value("--seeds") {
        cfg.seeds = parse_seed_range(spec).map_err(CliError::Usage)?;
    }
    cfg.rate_ppm = parsed
        .get("--rate", cfg.rate_ppm)
        .map_err(CliError::Usage)?;
    cfg.jobs = parsed.get("--jobs", cfg.jobs).map_err(CliError::Usage)?;
    cfg.gen_seed = parsed.get_opt("--gen").map_err(CliError::Usage)?;
    let bench = run_chaos_preset(&cfg).map_err(CliError::run)?;
    print!("{}", render_chaos(&bench));
    std::fs::write("BENCH_chaos.json", render_chaos_json(&bench))
        .map_err(|e| CliError::Run(format!("BENCH_chaos.json: {e}")))?;
    println!("wrote BENCH_chaos.json");
    if bench.violations() > 0 {
        return Err(CliError::Run(format!(
            "{} robustness invariant violation(s): {} abort(s), {} certificate mismatch(es), {} quarantine escape(s)",
            bench.violations(),
            bench.total_aborts(),
            bench.total_cert_mismatches(),
            bench.total_quarantine_escapes()
        )));
    }
    Ok(())
}

/// `rx gen PRESET [--seed N] [--variant V] [--out PATH] [--check]`:
/// deterministically emit a synthetic kernel at one of the generator
/// presets. The same preset/seed/variant always produces byte-identical
/// source, so generated workloads never need to be committed.
fn cmd_gen(parsed: &cli::Parsed) -> Result<(), CliError> {
    use reflex::kernels::synth;
    let preset = match parsed.positional.as_slice() {
        [] => "small",
        [one] => one.as_str(),
        _ => {
            return Err(CliError::Usage(
                "expected at most one PRESET operand".into(),
            ))
        }
    };
    let seed: u64 = parsed.get("--seed", 1).map_err(CliError::Usage)?;
    let variant: u32 = parsed.get("--variant", 0).map_err(CliError::Usage)?;
    let config = synth::SynthConfig::preset(preset, seed).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown preset `{preset}` (expected small, medium or large)"
        ))
    })?;
    let kernel = synth::generate_variant(&config, variant);
    if parsed.is_set("--check") {
        let checked = kernel.checked();
        eprintln!(
            "{}: ok ({} components, {} handlers, {} properties)",
            kernel.name,
            checked.program().components.len(),
            checked.program().handlers.len(),
            checked.program().properties.len()
        );
    }
    match parsed.value("--out") {
        Some(path) => {
            std::fs::write(path, &kernel.source)
                .map_err(|e| CliError::Run(format!("{path}: {e}")))?;
            eprintln!(
                "wrote {} ({} properties) to {path}",
                kernel.name, kernel.properties
            );
        }
        None => print!("{}", kernel.source),
    }
    Ok(())
}

/// `rx bench scale [--seed N] [--jobs N] [--preset NAME] [--json]`: prove
/// the generated presets and report throughput; with `--json`, also write
/// `BENCH_scale.json` pairing the live rows with the committed
/// pre-optimization baseline.
fn cmd_bench(parsed: &cli::Parsed) -> Result<(), CliError> {
    use reflex::bench::scale::{render_scale, render_scale_json, run_scale, PRESETS};
    match parsed.positional.as_slice() {
        [action] if action == "scale" => {}
        [action] if action == "store" => return cmd_bench_store(parsed),
        [action] if action == "serve" => return cmd_bench_serve(parsed),
        _ => {
            return Err(CliError::Usage(
                "expected the `scale`, `store` or `serve` operand".into(),
            ))
        }
    }
    let seed: u64 = parsed.get("--seed", 1).map_err(CliError::Usage)?;
    let jobs: usize = parsed.get("--jobs", 1).map_err(CliError::Usage)?;
    let presets: Vec<&str> = match parsed.value("--preset") {
        Some(p) if PRESETS.contains(&p) => vec![p],
        Some(p) => {
            return Err(CliError::Usage(format!(
                "unknown preset `{p}` (expected small, medium or large)"
            )))
        }
        None => PRESETS.to_vec(),
    };
    let rows = run_scale(&presets, seed, jobs).map_err(CliError::run)?;
    print!("{}", render_scale(&rows));
    if parsed.is_set("--json") {
        std::fs::write("BENCH_scale.json", render_scale_json(&rows))
            .map_err(|e| CliError::Run(format!("BENCH_scale.json: {e}")))?;
        println!("wrote BENCH_scale.json");
    }
    Ok(())
}

/// `rx bench store [--entries N] [--lookups N] [--seed N] [--json]`: the
/// proof-store stress bench — N synthetic certificates written to a
/// flat-layout store and to the log-structured store, then timed for
/// open, warm lookup and write throughput; with `--json`, also write
/// `BENCH_store.json` pairing both layouts with their speedups.
fn cmd_bench_store(parsed: &cli::Parsed) -> Result<(), CliError> {
    use reflex::bench::store::{
        render_store, render_store_json, run_store_bench, StoreBenchConfig,
    };
    let cfg = StoreBenchConfig {
        entries: parsed.get("--entries", 100_000).map_err(CliError::Usage)?,
        lookups: parsed.get("--lookups", 200_000).map_err(CliError::Usage)?,
        seed: parsed.get("--seed", 1).map_err(CliError::Usage)?,
    };
    if cfg.entries == 0 || cfg.lookups == 0 {
        return Err(CliError::Usage(
            "--entries and --lookups must be at least 1".into(),
        ));
    }
    let bench = run_store_bench(&cfg).map_err(CliError::run)?;
    print!("{}", render_store(&bench));
    if parsed.is_set("--json") {
        std::fs::write("BENCH_store.json", render_store_json(&bench))
            .map_err(|e| CliError::Run(format!("BENCH_store.json: {e}")))?;
        println!("wrote BENCH_store.json");
    }
    Ok(())
}

/// `rx bench serve [--clients N] [--requests N] [--socket PATH | --tcp
/// ADDR] [--jobs N] [--json]`: storm a daemon (an in-process one on a
/// scratch unix socket by default) with concurrent closed-loop clients
/// and report sustained req/s plus p50/p95/p99 latency; with `--json`,
/// also write `BENCH_serve.json`. Fails on any protocol error or
/// failed proof under load.
fn cmd_bench_serve(parsed: &cli::Parsed) -> Result<(), CliError> {
    use reflex::bench::serve::{
        render_serve, render_serve_json, run_serve_bench, ServeBenchConfig,
    };
    let cfg = ServeBenchConfig {
        clients: parsed.get("--clients", 8).map_err(CliError::Usage)?,
        requests: parsed.get("--requests", 16).map_err(CliError::Usage)?,
        endpoint: endpoint_flags(parsed)?,
        jobs: parsed.get("--jobs", 1).map_err(CliError::Usage)?,
        workers: 0,
        overload: parsed.is_set("--overload"),
    };
    if cfg.clients == 0 || cfg.requests == 0 {
        return Err(CliError::Usage(
            "--clients and --requests must be at least 1".into(),
        ));
    }
    let bench = run_serve_bench(&cfg).map_err(CliError::run)?;
    print!("{}", render_serve(&bench));
    if parsed.is_set("--json") {
        std::fs::write("BENCH_serve.json", render_serve_json(&bench))
            .map_err(|e| CliError::Run(format!("BENCH_serve.json: {e}")))?;
        println!("wrote BENCH_serve.json");
    }
    Ok(())
}

/// Decodes `--socket PATH` / `--tcp ADDR` into an endpoint (at most one
/// of the two).
fn endpoint_flags(parsed: &cli::Parsed) -> Result<Option<Endpoint>, CliError> {
    match (parsed.value("--socket"), parsed.value("--tcp")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "give --socket PATH or --tcp ADDR, not both".into(),
        )),
        (Some(path), None) => Ok(Some(Endpoint::Unix(path.into()))),
        (None, Some(addr)) => Ok(Some(Endpoint::Tcp(addr.to_owned()))),
        (None, None) => Ok(None),
    }
}

/// Renders `rx client stats` output.
fn render_stats_snapshot(s: &StatsSnapshot, json: bool) -> String {
    if json {
        format!(
            concat!(
                "{{\"requests_submitted\": {}, \"requests_served\": {}, ",
                "\"requests_executed\": {}, \"idempotent_hits\": {}, ",
                "\"rejected_busy\": {}, \"rejected_overloaded\": {}, ",
                "\"cancelled\": {}, \"deadline_expired\": {}, ",
                "\"protocol_errors\": {}, \"connections\": {}, ",
                "\"reaped_connections\": {}, \"accept_errors\": {}}}"
            ),
            s.requests_submitted,
            s.requests_served,
            s.requests_executed,
            s.idempotent_hits,
            s.rejected_busy,
            s.rejected_overloaded,
            s.cancelled,
            s.deadline_expired,
            s.protocol_errors,
            s.connections,
            s.reaped_connections,
            s.accept_errors
        )
    } else {
        format!(
            concat!(
                "requests: {} submitted, {} served ({} executed, {} deduped), ",
                "{} busy-rejected, {} shed\n",
                "cancelled: {} ({} deadline-expired)\n",
                "protocol errors: {}\n",
                "connections: {} ({} reaped, {} accept errors)"
            ),
            s.requests_submitted,
            s.requests_served,
            s.requests_executed,
            s.idempotent_hits,
            s.rejected_busy,
            s.rejected_overloaded,
            s.cancelled,
            s.deadline_expired,
            s.protocol_errors,
            s.connections,
            s.reaped_connections,
            s.accept_errors
        )
    }
}

/// Maps a client failure to its exit class — retryable transients
/// (daemon busy/overloaded, transport lost) exit 3, everything else
/// exit 1 — and with `--json` first prints a machine-readable error
/// object carrying the typed `ERR_*` code.
fn client_error(json: bool, e: ClientError) -> CliError {
    if json {
        let escaped: String = e
            .to_string()
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect();
        let code = match e.remote_code() {
            Some(code) => code.to_string(),
            None => "null".to_owned(),
        };
        let retry_after = match e.retry_after_ms() {
            Some(ms) => ms.to_string(),
            None => "null".to_owned(),
        };
        println!(
            "{{\"error\": \"{escaped}\", \"code\": {code}, \"retryable\": {}, \"retry_after_ms\": {retry_after}}}",
            e.is_retryable()
        );
    }
    if e.is_retryable() {
        CliError::Retry(e.to_string())
    } else {
        CliError::Run(e.to_string())
    }
}

/// `rx client ACTION (--socket PATH | --tcp ADDR)`: talk to a running
/// `rxd`. `verify` renders the daemon's report with exactly the code
/// the in-process path uses, so the output (and the exit code) cannot
/// tell the two apart. Transient failures — connect refused, daemon
/// busy or shedding load, connection lost mid-request — are retried
/// with capped exponential backoff (deterministic jitter from
/// `--retry-seed`); requests carry idempotency keys so a retry of a
/// verify whose reply was lost is answered from the daemon's dedup
/// window, not re-proved.
fn cmd_client(parsed: &cli::Parsed) -> Result<(), CliError> {
    let endpoint = endpoint_flags(parsed)?.ok_or_else(|| {
        CliError::Usage("nothing to connect to (give --socket PATH or --tcp ADDR)".into())
    })?;
    let json = parsed.is_set("--json");
    let retries: u32 = parsed.get("--retries", 3).map_err(CliError::Usage)?;
    let policy = RetryPolicy {
        max_attempts: retries + 1,
        base_delay_ms: parsed.get("--retry-base-ms", 25).map_err(CliError::Usage)?,
        seed: parsed
            .get("--retry-seed", u64::from(std::process::id()))
            .map_err(CliError::Usage)?,
        ..RetryPolicy::default()
    };
    let mut client = RetryingClient::connect(&endpoint, policy);
    match parsed.positional.as_slice() {
        [action] if action == "ping" => {
            client.ping().map_err(|e| client_error(json, e))?;
            println!("pong");
            Ok(())
        }
        [action] if action == "stats" => {
            let stats = client.server_stats().map_err(|e| client_error(json, e))?;
            println!("{}", render_stats_snapshot(&stats, json));
            Ok(())
        }
        [action] if action == "shutdown" => {
            // Deliberately unretried: a connection that dies mid-shutdown
            // most likely means the daemon exited before flushing the ack.
            let mut plain = Client::connect(&endpoint).map_err(|e| client_error(json, e))?;
            plain.shutdown().map_err(|e| client_error(json, e))?;
            println!("daemon is draining and shutting down.");
            Ok(())
        }
        [action, file] if action == "check" => {
            let (name, source) = read_kernel(file)?;
            let summary = client
                .check(&name, &source)
                .map_err(|e| client_error(json, e))?;
            println!("{}", render_check(file, &summary));
            Ok(())
        }
        [action, file, rest @ ..] if action == "verify" && rest.len() <= 1 => {
            let (name, source) = read_kernel(file)?;
            let request = Request::Verify {
                name,
                source,
                property: rest.first().cloned(),
                budget_ms: parsed.get_opt("--budget-ms").map_err(CliError::Usage)?,
                budget_nodes: parsed.get_opt("--budget-nodes").map_err(CliError::Usage)?,
                want_events: parsed.value("--trace-json").is_some(),
                deadline_ms: parsed.get_opt("--deadline-ms").map_err(CliError::Usage)?,
                idempotency_key: None,
            };
            let mut trace = match parsed.value("--trace-json") {
                Some(path) => Some(
                    std::fs::File::create(path)
                        .map_err(|e| CliError::Run(format!("{path}: {e}")))?,
                ),
                None => None,
            };
            let report = client
                .verify(request, &mut |line| {
                    if let Some(file) = trace.as_mut() {
                        use std::io::Write as _;
                        let _ = writeln!(file, "{line}");
                    }
                })
                .map_err(|e| client_error(json, e))?;
            render_verify_report(parsed, false, &report)
        }
        _ => Err(CliError::Usage(
            "expected `ping`, `stats`, `shutdown`, `check FILE` or `verify FILE [PROP]`".into(),
        )),
    }
}

/// `--seeds A..B` (half-open range) or a single seed `N`.
fn parse_seed_range(spec: &str) -> Result<Vec<u64>, String> {
    let parse = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| format!("--seeds: invalid value `{spec}` (expected A..B or N)"))
    };
    if let Some((a, b)) = spec.split_once("..") {
        let (a, b) = (parse(a)?, parse(b)?);
        if a >= b {
            return Err(format!("--seeds: empty range `{spec}`"));
        }
        Ok((a..b).collect())
    } else {
        Ok(vec![parse(spec)?])
    }
}

/// `rx sim run|swarm|replay`: the deterministic whole-stack simulator.
/// `run` drives one scenario and prints its replayable trace; `swarm`
/// fans a seed range across scenarios (writing `BENCH_sim.json` with
/// `--json`); `replay FILE` re-executes a `repro.json` bit for bit.
/// Any invariant violation is auto-shrunk to a minimal reproduction.
fn cmd_sim(parsed: &cli::Parsed) -> Result<(), CliError> {
    use reflex::sim::{repro, shrink, swarm, Scenario, Sim, SimConfig};
    let scenario_flag = parsed
        .value("--scenario")
        .map(|label| {
            Scenario::parse(label).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown scenario `{label}` (expected chaos, watch, soak, \
                     scale-edits, compaction-race, client-storm, daemon-crash-restart, \
                     net-partition or slow-client)"
                ))
            })
        })
        .transpose()?;
    let steps: Option<usize> = parsed.get_opt("--steps").map_err(CliError::Usage)?;
    if steps == Some(0) {
        return Err(CliError::Usage("--steps must be at least 1".into()));
    }
    let fs_rate: u32 = parsed.get("--fs-rate", 50_000).map_err(CliError::Usage)?;
    let panic_rate: u32 = parsed
        .get("--panic-rate", 20_000)
        .map_err(CliError::Usage)?;
    let inject_at: Option<usize> = parsed.get_opt("--inject-at").map_err(CliError::Usage)?;

    match parsed.positional.as_slice() {
        [action] if action == "run" => {
            let scenario = scenario_flag.unwrap_or(Scenario::Chaos);
            let mut config =
                SimConfig::new(scenario, parsed.get("--seed", 0).map_err(CliError::Usage)?);
            if let Some(steps) = steps {
                config.steps = steps;
            }
            config.fs_rate_ppm = fs_rate;
            config.panic_rate_ppm = panic_rate;
            config.inject_violation_at = inject_at;
            let outcome = Sim::run(&config);
            println!("{}", outcome.trace_text());
            println!("trace fingerprint: {:#018x}", outcome.trace_fingerprint);
            match &outcome.violation {
                None => {
                    println!(
                        "sim ok: {} step(s), no invariant violations",
                        outcome.steps_run
                    );
                    Ok(())
                }
                Some(violation) => {
                    let shrunk = shrink::shrink(&config, violation);
                    let minimized = Sim::run(&shrunk.minimized);
                    let record = repro::Repro::of(&minimized);
                    std::fs::write("repro.json", repro::render(&record))
                        .map_err(|e| CliError::Run(format!("repro.json: {e}")))?;
                    Err(CliError::Run(format!(
                        "invariant violation ({violation}); shrunk to {} step(s) in {} attempt(s), wrote repro.json",
                        shrunk.minimized.steps, shrunk.attempts
                    )))
                }
            }
        }
        [action] if action == "swarm" => {
            let mut cfg = swarm::SwarmConfig {
                fs_rate_ppm: fs_rate,
                panic_rate_ppm: panic_rate,
                steps,
                inject_violation_at: inject_at,
                jobs: parsed.get("--jobs", 0).map_err(CliError::Usage)?,
                repro_dir: parsed.value("--repro-dir").map(std::path::PathBuf::from),
                ..swarm::SwarmConfig::default()
            };
            if let Some(scenario) = scenario_flag {
                cfg.scenarios = vec![scenario];
            }
            if let Some(spec) = parsed.value("--seeds") {
                cfg.seeds = parse_seed_range(spec).map_err(CliError::Usage)?;
            }
            let bench = swarm::run_swarm(&cfg);
            print!("{}", swarm::render_swarm(&bench));
            if parsed.is_set("--json") {
                std::fs::write("BENCH_sim.json", swarm::render_swarm_json(&bench))
                    .map_err(|e| CliError::Run(format!("BENCH_sim.json: {e}")))?;
                println!("wrote BENCH_sim.json");
            }
            if bench.violations() > 0 {
                return Err(CliError::Run(format!(
                    "{} run(s) violated an invariant (see repro files above)",
                    bench.violations()
                )));
            }
            Ok(())
        }
        [action, file] if action == "replay" => {
            let verdict = repro::replay_file(std::path::Path::new(file)).map_err(CliError::Run)?;
            println!("{}", verdict.outcome.trace_text());
            println!(
                "trace fingerprint: {:#018x}",
                verdict.outcome.trace_fingerprint
            );
            if verdict.reproduced() {
                println!("replay ok: the recorded violation reproduced bit-identically");
                Ok(())
            } else {
                Err(CliError::Run(format!(
                    "replay diverged: violation {}, trace {}",
                    if verdict.violation_matches {
                        "matched"
                    } else {
                        "differed"
                    },
                    if verdict.trace_matches {
                        "matched"
                    } else {
                        "differed"
                    },
                )))
            }
        }
        _ => Err(CliError::Usage(
            "expected `run`, `swarm` or `replay FILE`".into(),
        )),
    }
}

/// `rx store scrub|compact|migrate|stat DIR [FILE]`: audit or reshape a
/// proof store in place. `scrub` and `compact` are the same pass —
/// rewrite live entries into fresh segments, drop superseded frames,
/// quarantine corrupt ones; with FILE, entries belonging to that
/// kernel's current properties are additionally re-validated by the
/// independent checker. `migrate` folds a flat-layout store into the
/// segmented layout (compaction without a kernel). `stat` reports entry,
/// segment and shard counts, on-disk bytes, and the open-time index
/// build cost, as text or `--json`.
fn cmd_store(parsed: &cli::Parsed) -> Result<(), CliError> {
    let (action, dir, file) =
        match parsed.positional.as_slice() {
            [action, dir] => (action.as_str(), dir.as_str(), None),
            [action, dir, file] if action == "scrub" || action == "compact" => {
                (action.as_str(), dir.as_str(), Some(file.as_str()))
            }
            _ => return Err(CliError::Usage(
                "expected `scrub DIR [FILE]`, `compact DIR [FILE]`, `migrate DIR` or `stat DIR`"
                    .into(),
            )),
        };
    let store =
        reflex::verify::ProofStore::open(dir).map_err(|e| CliError::Run(format!("{dir}: {e}")))?;
    let report = match action {
        "stat" => {
            let stat = store
                .stat()
                .map_err(|e| CliError::Run(format!("{dir}: stat failed: {e}")))?;
            if parsed.is_set("--json") {
                print!("{}", stat.render_json());
            } else {
                print!("{}", stat.render_text());
            }
            return Ok(());
        }
        "scrub" | "compact" => {
            let checked = file.map(load).transpose()?;
            let options = ProverOptions::default();
            store
                .compact(checked.as_ref().map(|c| (c, &options)))
                .map_err(|e| CliError::Run(format!("{dir}: {action} failed: {e}")))?
        }
        "migrate" => store
            .migrate()
            .map_err(|e| CliError::Run(format!("{dir}: migrate failed: {e}")))?,
        other => {
            return Err(CliError::Usage(format!(
                "unknown action `{other}` (expected scrub, compact, migrate or stat)"
            )))
        }
    };
    if parsed.is_set("--json") {
        print!("{}", report.render_json());
    } else {
        println!("{}", report.summary());
    }
    if report.quarantined.is_empty() {
        if !parsed.is_set("--json") {
            println!("{dir}: store is clean.");
        }
        Ok(())
    } else {
        Err(CliError::Run(format!(
            "{} entr(y/ies) quarantined under {dir}/{} (see report.json there)",
            report.quarantined.len(),
            reflex::verify::QUARANTINE_DIR
        )))
    }
}

fn cmd_soak(parsed: &cli::Parsed) -> Result<(), CliError> {
    if !parsed.positional.is_empty() {
        return Err(CliError::Usage(format!(
            "unexpected operand `{}`",
            parsed.positional[0]
        )));
    }
    let mut cfg = SoakConfig::default();
    cfg.steps = parsed.get("--steps", cfg.steps).map_err(CliError::Usage)?;
    cfg.seed = parsed.get("--seed", cfg.seed).map_err(CliError::Usage)?;
    cfg.jobs = parsed.get("--jobs", cfg.jobs).map_err(CliError::Usage)?;
    cfg.fault_rate = parsed
        .get("--fault-rate", cfg.fault_rate)
        .map_err(CliError::Usage)?;
    cfg.monitor = !parsed.is_set("--no-monitor");
    let kernel = parsed.value("--kernel");
    let json = parsed.is_set("--json");
    let incident_dir = parsed.value("--incident-dir");

    let outcomes: Vec<SoakOutcome> = if let Some(name) = kernel {
        let benches = reflex::kernels::all_benchmarks();
        let (index, bench) = benches
            .iter()
            .enumerate()
            .find(|(_, b)| b.name == name)
            .ok_or_else(|| CliError::Run(format!("no bundled kernel named `{name}`")))?;
        vec![reflex::bench::soak::soak_kernel(bench, &cfg, index)]
    } else if json {
        let bench = run_soak_bench_preset(&cfg);
        let doc = render_soak_json(&bench);
        std::fs::write("BENCH_soak.json", &doc)
            .map_err(|e| CliError::Run(format!("BENCH_soak.json: {e}")))?;
        println!(
            "with monitor {:.1} steps/s, without {:.1} steps/s (overhead {:.2}x) -> wrote BENCH_soak.json",
            bench.monitored_throughput(),
            bench.unmonitored_throughput(),
            if bench.unmonitored_ms > 0.0 {
                bench.monitored_ms / bench.unmonitored_ms
            } else {
                0.0
            }
        );
        bench.monitored
    } else {
        run_soak_preset(&cfg)
    };
    print!("{}", render_soak(&outcomes));
    if let Some(dir) = incident_dir {
        std::fs::create_dir_all(dir).map_err(|e| CliError::Run(format!("{dir}: {e}")))?;
        for o in &outcomes {
            let path = format!("{dir}/{}.log", o.kernel);
            std::fs::write(&path, &o.incident_log)
                .map_err(|e| CliError::Run(format!("{path}: {e}")))?;
        }
        println!("incident logs written to {dir}/");
    }
    let bad: Vec<&SoakOutcome> = outcomes
        .iter()
        .filter(|o| o.failure.is_some() || o.unrecovered > 0)
        .collect();
    if bad.is_empty() {
        println!(
            "soak ok: {} kernel(s), {} exchange(s) total, all faults recovered{}",
            outcomes.len(),
            outcomes.iter().map(|o| o.steps).sum::<usize>(),
            if cfg.monitor {
                ", no certificate violations"
            } else {
                " (monitor off)"
            }
        );
        Ok(())
    } else {
        Err(CliError::Run(format!(
            "soak failed for {}",
            bad.iter()
                .map(|o| o.kernel.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )))
    }
}
