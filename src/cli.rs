//! Shared option-table flag parsing for the `rx` frontend.
//!
//! Every `rx` subcommand declares its flags as a table of [`FlagSpec`]s
//! and parses its operands with [`parse`]; unknown flags, missing values
//! and malformed numbers all produce a specific error message (instead of
//! the silent usage fallback the hand-rolled parsers used to share), and
//! the same table renders the per-subcommand flag help.

use std::collections::HashMap;

/// One flag a subcommand accepts.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// The flag itself, e.g. `"--jobs"`.
    pub name: &'static str,
    /// For value-taking flags, the placeholder shown in help (e.g. `"N"`);
    /// `None` for boolean switches.
    pub value: Option<&'static str>,
    /// One-line description for the help text.
    pub help: &'static str,
}

/// The parsed operands of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Non-flag operands, in order.
    pub positional: Vec<String>,
    values: HashMap<&'static str, String>,
    switches: Vec<&'static str>,
}

impl Parsed {
    /// Whether a boolean switch was given.
    pub fn is_set(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// A value-taking flag's raw value, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A value-taking flag parsed to `T`, or `default` when absent.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        self.get_opt(name).map(|v| v.unwrap_or(default))
    }

    /// A value-taking flag parsed to `T`, or `None` when absent.
    pub fn get_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("{name}: invalid value `{raw}`")),
        }
    }
}

/// Parses `rest` against the subcommand's flag table. Everything that is
/// not a declared flag (or its value) is collected as a positional
/// operand; a repeated flag's last occurrence wins.
///
/// # Errors
///
/// Returns a message naming the offending flag: unknown flag, or a
/// value-taking flag at the end of the line with no value.
pub fn parse(specs: &[FlagSpec], rest: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match specs.iter().find(|s| s.name == arg.as_str()) {
            Some(spec) if spec.value.is_some() => {
                let value = it.next().ok_or_else(|| {
                    format!(
                        "{} requires a value ({})",
                        spec.name,
                        spec.value.unwrap_or("VALUE")
                    )
                })?;
                parsed.values.insert(spec.name, value.clone());
            }
            Some(spec) => parsed.switches.push(spec.name),
            None if arg.starts_with("--") => {
                return Err(format!("unknown flag `{arg}`"));
            }
            None => parsed.positional.push(arg.clone()),
        }
    }
    Ok(parsed)
}

/// Renders the flag table as indented help lines, one per flag.
pub fn render_flag_help(specs: &[FlagSpec]) -> String {
    let rows: Vec<(String, &str)> = specs
        .iter()
        .map(|s| {
            let lhs = match s.value {
                Some(v) => format!("{} {v}", s.name),
                None => s.name.to_owned(),
            };
            (lhs, s.help)
        })
        .collect();
    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    rows.iter()
        .map(|(lhs, help)| format!("  {lhs:<width$}  {help}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPECS: &[FlagSpec] = &[
        FlagSpec {
            name: "--jobs",
            value: Some("N"),
            help: "worker threads",
        },
        FlagSpec {
            name: "--stats",
            value: None,
            help: "print counters",
        },
    ];

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn positionals_flags_and_values_separate() {
        let p = parse(SPECS, &args(&["file.rx", "--jobs", "4", "--stats", "Prop"])).unwrap();
        assert_eq!(p.positional, vec!["file.rx", "Prop"]);
        assert_eq!(p.get("--jobs", 1usize).unwrap(), 4);
        assert!(p.is_set("--stats"));
    }

    #[test]
    fn unknown_flag_is_an_error_not_a_silent_none() {
        let err = parse(SPECS, &args(&["file.rx", "--bogus"])).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn missing_value_names_the_flag_and_placeholder() {
        let err = parse(SPECS, &args(&["--jobs"])).unwrap_err();
        assert!(err.contains("--jobs") && err.contains('N'), "{err}");
    }

    #[test]
    fn malformed_value_is_reported_at_parse_time() {
        let p = parse(SPECS, &args(&["--jobs", "many"])).unwrap();
        let err = p.get("--jobs", 1usize).unwrap_err();
        assert!(err.contains("many"), "{err}");
    }

    #[test]
    fn repeated_flag_last_wins_and_defaults_apply() {
        let p = parse(SPECS, &args(&["--jobs", "2", "--jobs", "8"])).unwrap();
        assert_eq!(p.get("--jobs", 1usize).unwrap(), 8);
        assert_eq!(p.get("--missing", 7usize).unwrap(), 7);
        assert_eq!(p.get_opt::<u64>("--missing").unwrap(), None);
    }

    #[test]
    fn help_lines_align_and_cover_every_flag() {
        let help = render_flag_help(SPECS);
        assert!(
            help.contains("--jobs N") && help.contains("--stats"),
            "{help}"
        );
    }
}
