//! # Reflex
//!
//! A Rust reproduction of **"Automating Formal Proofs for Reactive
//! Systems"** (Ricketts, Robert, Jang, Tatlock, Lerner — PLDI 2014): the
//! Reflex DSL for reactive-system kernels together with fully automatic,
//! pushbutton verification of trace and non-interference properties.
//!
//! This crate is a façade re-exporting the workspace's sub-crates:
//!
//! * [`ast`] — program and property syntax ([`ast::Program`]).
//! * [`parser`] — the concrete `.rx` frontend ([`parser::parse_program`]).
//! * [`typeck`] — static well-formedness checking.
//! * [`trace`] — actions, traces and the five trace-property primitives.
//! * [`symbolic`] — symbolic terms, the constraint solver and the symbolic
//!   evaluator over loop-free handlers.
//! * [`verify`] — the paper's core contribution: automatic proof search
//!   producing machine-checkable certificates, plus a bounded
//!   counterexample finder.
//! * [`runtime`] — an executable interpreter with simulated components and
//!   a `BehAbs` trace-inclusion oracle.
//! * [`kernels`] — the paper's benchmark kernels (car, ssh, ssh2,
//!   browser 1–3, webserver) and their 41 properties.
//! * [`bench`] — the evaluation harness (Figure 6, Table 1, ablation) and
//!   the supervised-runtime soak suite.
//! * [`driver`] — the instrumented [`driver::VerifySession`] pipeline
//!   engine every entry point (CLI, watch loop, benches) runs on.
//! * [`rng`] — the one splittable deterministic RNG and the labelled
//!   seed-derivation tree every stochastic component draws from.
//! * [`sim`] — the deterministic whole-stack simulator behind
//!   `rx sim run / swarm / replay`: one root seed, virtual time,
//!   scenario traces, automatic shrinking.
//! * [`service`] — the resident service core behind `rxd` and
//!   `rx client`: one long-lived shared `Env`, a framed wire protocol
//!   with streamed events, and the thin client SDK.
//! * [`cli`] — shared option-table flag parsing for the `rx` frontend.
//!
//! # Quickstart
//!
//! ```
//! use reflex::prelude::*;
//!
//! // The simplified SSH kernel from Figure 3 of the paper.
//! let program = reflex::kernels::ssh::program();
//! let checked = reflex::typeck::check(&program).expect("well-formed");
//!
//! // Prove every declared property, fully automatically.
//! for prop in &program.properties {
//!     let outcome = reflex::verify::prove(&checked, &prop.name, &Default::default())
//!         .expect("verification ran");
//!     assert!(outcome.is_proved(), "{} should verify", prop.name);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod cli;

pub use reflex_ast as ast;
pub use reflex_bench as bench;
pub use reflex_driver as driver;
pub use reflex_kernels as kernels;
pub use reflex_parser as parser;
pub use reflex_rng as rng;
pub use reflex_runtime as runtime;
pub use reflex_service as service;
pub use reflex_sim as sim;
pub use reflex_symbolic as symbolic;
pub use reflex_trace as trace;
pub use reflex_typeck as typeck;
pub use reflex_verify as verify;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use reflex_ast::{
        ActionPat, Cmd, CompPat, Expr, PatField, Program, PropBody, PropertyDecl, TraceProp,
        TracePropKind, Ty, Value,
    };
    pub use reflex_parser::parse_program;
    pub use reflex_typeck::check;
}
