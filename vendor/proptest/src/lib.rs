//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates registry, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! [`strategy::Just`], [`prop_oneof!`], `collection::vec`, `option::of`,
//! `sample::select`, integer-range and regex-literal strategies, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate and documented:
//!
//! - **No shrinking.** A failing case reports its seed; rerun with
//!   `PROPTEST_SEED=<seed>` to reproduce deterministically.
//! - **Deterministic by default.** Cases are generated from a fixed base
//!   seed mixed with the test name, so CI runs are reproducible.
//! - **Regex strategies** support the subset the workspace uses:
//!   `\PC` (printable char), character classes `[a-z...]`, literals, and the
//!   `*` / `{m,n}` quantifiers.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case runner, RNG and error plumbing.

    use std::ops::Range;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion: the property is violated.
        Fail(String),
        /// The case was rejected by `prop_assume!`; it does not count.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
        /// A rejected (assumption-violating) case.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections across the whole run.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..n` (n > 0).
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }

        /// Uniform draw from a half-open usize range.
        pub fn in_range(&mut self, r: Range<usize>) -> usize {
            r.start + self.below(r.end - r.start)
        }
    }

    fn mix(seed: u64, salt: u64) -> u64 {
        let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn name_salt(name: &str) -> u64 {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive `case` until `config.cases` successes (used by `proptest!`).
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case failure,
    /// reporting the per-case seed for reproduction via `PROPTEST_SEED`.
    pub fn run_proptest_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => 0x5EED_0000_0000_0000 ^ name_salt(name),
        };
        let mut successes = 0u32;
        let mut rejects = 0u32;
        let mut index = 0u64;
        while successes < config.cases {
            let case_seed = mix(base, index);
            index += 1;
            let mut rng = TestRng::from_seed(case_seed);
            match case(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: too many prop_assume! rejections \
                             ({rejects}) before reaching {} cases",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest `{name}` failed after {successes} passing case(s) \
                         [rerun with PROPTEST_SEED={base} to reproduce]: {reason}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursively extend this (leaf) strategy: `recurse` receives a
        /// strategy for the previous depth level and returns the next one.
        /// `_desired_size` and `_expected_branch` are accepted for
        /// signature compatibility and ignored; recursion depth is bounded
        /// by `depth`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                // 1/3 chance of stopping at a leaf at every level, so
                // generated sizes vary instead of always maxing the depth.
                current = Union::new(vec![base.clone(), deeper.clone(), deeper]).boxed();
            }
            current
        }

        /// Type-erase into a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// A cloneable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given non-empty alternative list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(hi as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    // ---- regex-literal string strategies --------------------------------

    #[derive(Debug, Clone)]
    enum Atom {
        /// `\PC`: any printable character.
        Printable,
        /// `[...]`: one of an explicit character set.
        Class(Vec<char>),
        /// A literal character.
        Lit(char),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Parse the regex subset used by the workspace's string strategies.
    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC` — printable (proptest's no-control class).
                        match chars.next() {
                            Some('C') => Atom::Printable,
                            other => panic!("unsupported escape \\P{other:?} in {pattern:?}"),
                        }
                    }
                    Some(escaped) => Atom::Lit(escaped),
                    None => panic!("dangling backslash in {pattern:?}"),
                },
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let hi = chars
                                        .next()
                                        .unwrap_or_else(|| panic!("bad class in {pattern:?}"));
                                    assert!(hi != ']', "bad class range in {pattern:?}");
                                    for code in lo as u32..=hi as u32 {
                                        set.extend(char::from_u32(code));
                                    }
                                } else {
                                    set.push(lo);
                                }
                            }
                            None => panic!("unterminated class in {pattern:?}"),
                        }
                    }
                    assert!(!set.is_empty(), "empty class in {pattern:?}");
                    Atom::Class(set)
                }
                lit => Atom::Lit(lit),
            };
            let (min, max) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("repeat min"),
                            hi.trim().parse().expect("repeat max"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("repeat count");
                            (n, n)
                        }
                    };
                    (lo, hi)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn gen_printable(rng: &mut TestRng) -> char {
        // ASCII printable plus a sprinkle of multibyte, mirroring what the
        // robustness tests want out of `\PC`: arbitrary non-control text.
        const EXTRA: &[char] = &['é', 'λ', '→', '✓', '中', '🦀'];
        if rng.below(8) == 0 {
            EXTRA[rng.below(EXTRA.len())]
        } else {
            char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ascii")
        }
    }

    /// `&str` literals are regex strategies producing `String`s.
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let pieces = parse_pattern(self);
            let mut out = String::new();
            for piece in &pieces {
                let count = piece.min + rng.below(piece.max - piece.min + 1);
                for _ in 0..count {
                    match &piece.atom {
                        Atom::Printable => out.push(gen_printable(rng)),
                        Atom::Class(set) => out.push(set[rng.below(set.len())]),
                        Atom::Lit(c) => out.push(*c),
                    }
                }
            }
            out
        }
    }

    impl Strategy for String {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            self.as_str().gen_value(rng)
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for type-directed generation.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<fn() -> A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match real proptest's default: Some three times out of four.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    //! Sampling from explicit value lists (`proptest::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }

    /// `proptest::sample::select(items)`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from an empty list");
        Select { items }
    }
}

pub mod prelude {
    //! Everything `use proptest::prelude::*;` is expected to bring in.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the standard grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0..10i64, v in proptest::collection::vec(any::<bool>(), 0..4)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_proptest_cases(
                &__config,
                stringify!($name),
                |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __proptest_rng);)+
                    let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    __out
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            __l,
            __r
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_class_repeat() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = "[a-c]{0,3}".gen_value(&mut rng);
            assert!(s.len() <= 3);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn regex_printable_star() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = "\\PC*".gen_value(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(
            x in -5i64..5,
            v in crate::collection::vec(any::<bool>(), 0..4),
            s in crate::sample::select(vec![1u8, 2, 3]),
            o in crate::option::of(Just(7u32)),
        ) {
            prop_assume!(x != -5);
            prop_assert!((-4..5).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert!((1..=3).contains(&s));
            prop_assert_eq!(o.unwrap_or(7), 7);
        }
    }

    #[test]
    fn recursive_strategy_varies_depth() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(i) => 1 + depth(i),
            }
        }
        let strat =
            Just(T::Leaf).prop_recursive(4, 8, 1, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        let mut rng = TestRng::from_seed(3);
        let depths: Vec<usize> = (0..100)
            .map(|_| depth(&strat.gen_value(&mut rng)))
            .collect();
        assert!(depths.contains(&0));
        assert!(depths.iter().any(|&d| d >= 2));
        assert!(depths.iter().all(|&d| d <= 4));
    }
}
