//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`]. The generator is a deterministic SplitMix64 —
//! statistically fine for simulation/fuzzing, *not* cryptographic.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The uniform-sampling extension trait (the `rand` 0.9+ `Rng` surface the
/// workspace uses).
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniformly sample from a half-open range. Panics on empty ranges,
    /// matching `rand`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniformly random bool.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Types that can be sampled uniformly from a `Range` by [`RngExt`].
pub trait SampleUniform: Sized {
    /// Sample uniformly from `range` using `rng`.
    fn sample<R: RngExt + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngExt + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-32 for the
                // small spans used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngExt + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // u64 of state, never yields a fixed point.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_sampling_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.random_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..500 {
            let v = rng.random_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
    }
}
