//! Vendored offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! as a plain wall-clock harness: per benchmark it runs one warm-up
//! iteration plus `sample_size` timed samples and prints min/mean/max.
//! No statistics, plots or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [FILTER]`; honor a
        // positional filter, ignore harness flags we don't implement.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = self._criterion.filter.as_deref() {
            if !full.contains(filter) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // One unrecorded warm-up pass, then the recorded samples.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let (min, mean, max) = bencher.stats();
        println!(
            "bench {full:<50} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}  ({} samples)",
            min,
            mean,
            max,
            bencher.samples.len()
        );
        self
    }

    /// End the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure to time its hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `routine` and record it as a sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        std_black_box(out);
        self.samples.push(elapsed);
    }

    fn stats(&self) -> (Duration, Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        let min = *self.samples.iter().min().expect("non-empty");
        let max = *self.samples.iter().max().expect("non-empty");
        let total: Duration = self.samples.iter().sum();
        (min, total / self.samples.len() as u32, max)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_records_samples() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
