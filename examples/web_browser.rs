//! The web browser kernel (§6.1): tabs, per-domain cookie processes,
//! domain non-interference.
//!
//! Verifies all six Figure 6 `browser` properties — including the
//! `forall d` non-interference between domains — then browses two sites
//! concurrently and shows the cookie isolation in the trace. Finally it
//! demonstrates the paper's §6.3 experience: a seeded bug in a "protocol
//! change" is immediately caught by re-running the (pushbutton)
//! verification.
//!
//! ```sh
//! cargo run --example web_browser
//! ```

use reflex::ast::Value;
use reflex::runtime::{EmptyWorld, Interpreter, Registry};
use reflex::trace::{Action, Msg};
use reflex::verify::{prove, prove_all, ProverOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checked = reflex::kernels::browser::checked();
    let options = ProverOptions::default();

    println!("=== verifying the browser kernel ===");
    for (name, outcome) in prove_all(&checked, &options) {
        match outcome.certificate() {
            Some(cert) => println!("  proved {name} ({} obligations)", cert.obligation_count()),
            None => panic!("{name} failed: {}", outcome.failure().unwrap()),
        }
    }

    println!("\n=== browsing ===");
    let mut kernel = Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), 7)?;
    let chrome = kernel.components_of("Chrome")[0].id;
    for domain in ["mail.example", "news.example", "mail.example"] {
        kernel.inject(chrome, Msg::new("NewTab", [Value::from(domain)]))?;
    }
    kernel.run(8)?;
    for tab in kernel.components_of("Tab") {
        println!("  tab {} for {}", tab.config[1], tab.config[0]);
    }

    // Each tab stores a cookie; the kernel creates one cookie process per
    // domain and never crosses the streams.
    let tabs: Vec<_> = kernel.components_of("Tab").iter().map(|t| t.id).collect();
    for (i, id) in tabs.iter().enumerate() {
        kernel.inject(
            *id,
            Msg::new("SetCookie", [Value::from(format!("session={i}"))]),
        )?;
    }
    kernel.run(16)?;
    println!(
        "  cookie processes: {}",
        kernel.components_of("CookieMgr").len()
    );
    for a in kernel.trace().iter_chrono() {
        if let Action::Send { comp, msg } = a {
            if comp.ctype == "CookieMgr" {
                println!("  kernel → CookieMgr({}): {msg}", comp.config[0]);
            }
        }
    }

    // Socket policy in action.
    kernel.inject(
        tabs[0],
        Msg::new("OpenSocket", [Value::from("mail.example")]),
    )?;
    kernel.inject(
        tabs[0],
        Msg::new("OpenSocket", [Value::from("evil.example")]),
    )?;
    kernel.run(8)?;
    let connects = kernel
        .trace()
        .iter_chrono()
        .filter(|a| matches!(a, Action::Send { msg, .. } if msg.name == "Connect"))
        .count();
    println!("  sockets opened: {connects} (the cross-domain one was refused)");

    reflex::runtime::oracle::check_trace_inclusion(&checked, kernel.trace())?;
    println!("  trace ⊆ BehAbs ✓");

    // §6.3: "we inadvertently introduced subtle bugs which we did not
    // discover until our proof automation failed."
    println!("\n=== re-verification after a (buggy) protocol change ===");
    let buggy_src = reflex::kernels::browser::SOURCE.replace(
        "lookup Tab(t : t.domain == sender.domain)",
        "lookup Tab(t : t.id <= tab_counter)",
    );
    let buggy = reflex::typeck::check(&reflex::parser::parse_program("browser-edit", &buggy_src)?)?;
    let outcome = prove(&buggy, "DomainNI", &options)?;
    match outcome.failure() {
        Some(f) => println!("  DomainNI now FAILS (bug caught): {f}"),
        None => panic!("the seeded bug should break non-interference"),
    }
    Ok(())
}
