//! Incremental re-verification (the paper's §6.4 future work): after an
//! edit, certificates whose proofs are provably unaffected are reused;
//! everything else is re-proved — and regressions are still caught.
//!
//! ```sh
//! cargo run --example incremental_reverify
//! ```

use reflex::verify::{prove_all, reverify, ProverOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let old = reflex::kernels::browser::checked();
    let options = ProverOptions::default();

    println!("=== initial verification of the browser kernel ===");
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| {
            println!("  proved {name}");
            (name, o.certificate().expect("proved").clone())
        })
        .collect();

    // Edit 1: harden the socket handler (a benign change).
    println!("\n=== edit: harden the OpenSocket handler, re-verify ===");
    let edited = reflex::kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {",
        "    if (host == sender.domain && host != \"\") {",
    );
    let new = reflex::typeck::check(&reflex::parser::parse_program("browser", &edited)?)?;
    let report = reverify(&previous, &new, &options)?;
    for name in &report.reused {
        println!("  reused   {name}");
    }
    for name in &report.partial {
        println!("  partial  {name}");
    }
    for name in &report.reproved {
        println!("  reproved {name}");
    }
    assert!(report.outcomes.iter().all(|(_, o)| o.is_proved()));
    println!(
        "  → {} certificates reused, {} patched per-case, {} properties re-proved",
        report.reused.len(),
        report.partial.len(),
        report.reproved.len()
    );

    // Edit 2: an actual regression — caught on re-verification.
    println!("\n=== edit: drop the socket guard entirely, re-verify ===");
    let broken = reflex::kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {\n      send(N, Connect(host));\n    }",
        "    send(N, Connect(host));",
    );
    let new = reflex::typeck::check(&reflex::parser::parse_program("browser", &broken)?)?;
    let report = reverify(&previous, &new, &options)?;
    for (name, outcome) in &report.outcomes {
        match outcome.failure() {
            None => println!("  ✓ {name}"),
            Some(f) => println!("  ✗ {name}: {f}"),
        }
    }
    let socket = report
        .outcomes
        .iter()
        .find(|(n, _)| n == "SocketsOnlyToOwnDomain")
        .expect("present");
    assert!(!socket.1.is_proved(), "the regression must be caught");
    println!("\nregression detected — no stale certificate was reused for it.");
    Ok(())
}
