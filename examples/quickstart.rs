//! Quickstart: write a tiny reactive kernel, verify it pushbutton, run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use reflex::prelude::*;
use reflex::runtime::{EmptyWorld, Interpreter, Registry, ScriptedBehavior};
use reflex::trace::Msg;
use reflex::verify::{check_certificate, prove, ProverOptions};

const KERNEL: &str = r#"
// A turnstile kernel: a Gate component may only be opened after a
// Reader component reports a valid badge for the same person.
components {
  Reader "badge-reader.py" ();
  Gate "gate-motor.c" ();
}

messages {
  BadgeOk(str);
  EntryReq(str);
  Open(str);
}

state {
  badge_user: str = "";
  badge_ok: bool = false;
}

init {
  R <- spawn Reader();
  G <- spawn Gate();
}

handlers {
  when Reader:BadgeOk(who) {
    badge_user = who;
    badge_ok = true;
  }
  when Reader:EntryReq(who) {
    if (badge_ok && who == badge_user) {
      send(G, Open(who));
    }
  }
}

properties {
  BadgeBeforeOpen: forall w: str.
    [Recv(Reader(), BadgeOk(w))] Enables [Send(Gate(), Open(w))];
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and type-check.
    let program = parse_program("turnstile", KERNEL)?;
    let checked = check(&program)?;
    println!(
        "parsed `{}`: {} handlers, {} properties",
        program.name,
        program.handlers.len(),
        program.properties.len()
    );

    // 2. Pushbutton verification: no proof scripts, no annotations.
    let options = ProverOptions::default();
    let outcome = prove(&checked, "BadgeBeforeOpen", &options)?;
    let cert = outcome
        .certificate()
        .expect("BadgeBeforeOpen verifies automatically");
    println!("{cert}");

    // 3. Independently validate the proof certificate (the trusted step).
    check_certificate(&checked, cert, &options)?;
    println!("certificate validated ✓");

    // 4. Run the kernel with a scripted badge reader.
    let registry = Registry::new().register("badge-reader.py", |_| {
        Box::new(ScriptedBehavior::new().starts_with([
            Msg::new("EntryReq", [Value::from("mallory")]), // before any badge
            Msg::new("BadgeOk", [Value::from("alice")]),
            Msg::new("EntryReq", [Value::from("alice")]),
        ]))
    });
    let mut kernel = Interpreter::new(&checked, registry, Box::new(EmptyWorld), 0)?;
    kernel.run(16)?;
    println!("--- trace ---\n{}", kernel.trace());

    // 5. The run is a member of the behavioral abstraction, and the
    //    verified property holds on it — as the proof guarantees.
    reflex::runtime::oracle::check_trace_inclusion(&checked, kernel.trace())?;
    reflex::trace::check_trace_properties(kernel.trace(), &checked.program().properties)
        .map_err(|(name, e)| format!("{name}: {e}"))?;
    println!("runtime trace ⊆ BehAbs and satisfies all properties ✓");
    Ok(())
}
