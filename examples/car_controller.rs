//! The automobile controller (§6.1, Figure 5): safety messages, trace
//! temporal properties, and non-interference between criticality levels.
//!
//! Demonstrates the dynamic side of non-interference too: two runs with
//! identical high (Engine) inputs but different low (Radio/Doors) traffic
//! produce identical high-observable outputs.
//!
//! ```sh
//! cargo run --example car_controller
//! ```

use reflex::ast::Value;
use reflex::runtime::oracle::observable_outputs;
use reflex::runtime::{EmptyWorld, Interpreter, Registry};
use reflex::trace::Msg;
use reflex::verify::{prove_all, ProverOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checked = reflex::kernels::car::checked();
    let options = ProverOptions::default();

    println!("=== verifying the car kernel ===");
    for (name, outcome) in prove_all(&checked, &options) {
        match outcome.certificate() {
            Some(_) => println!("  proved {name}"),
            None => panic!("{name} failed: {}", outcome.failure().unwrap()),
        }
    }

    // Run 1: crash with light low traffic.
    let run = |low_noise: usize, seed: u64| -> Result<_, Box<dyn std::error::Error>> {
        let mut kernel = Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), seed)?;
        let engine = kernel.components_of("Engine")[0].id;
        let radio = kernel.components_of("Radio")[0].id;
        let doors = kernel.components_of("Doors")[0].id;
        // Low-criticality chatter (varies between runs).
        for _ in 0..low_noise {
            kernel.inject(radio, Msg::new("LockReq", []))?;
            kernel.inject(doors, Msg::new("DoorsOpen", []))?;
            kernel.run(4)?;
        }
        // Identical high-criticality input in both runs.
        kernel.inject(engine, Msg::new("Accelerating", []))?;
        kernel.run(4)?;
        kernel.inject(engine, Msg::new("Crash", []))?;
        kernel.run(8)?;
        Ok(kernel)
    };

    let quiet = run(0, 1)?;
    let noisy = run(5, 99)?;

    println!("\n=== dynamic non-interference check ===");
    println!(
        "  quiet run: {} actions; noisy run: {} actions",
        quiet.trace().len(),
        noisy.trace().len()
    );
    // π_o restricted to the high component (the Engine) must agree.
    let high = |c: &reflex::trace::CompInst| c.ctype == "Engine";
    let a = observable_outputs(quiet.trace(), high);
    let b = observable_outputs(noisy.trace(), high);
    assert_eq!(a, b, "engine-observable outputs must be identical");
    println!(
        "  π_o(Engine) identical across runs ✓ ({} outputs)",
        a.len()
    );

    println!("\n=== crash response (from the noisy run's trace) ===");
    for action in noisy
        .trace()
        .iter_chrono()
        .rev()
        .take(6)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        println!("  {action}");
    }
    assert_eq!(noisy.state_var("crashed"), Some(&Value::Bool(true)));

    reflex::runtime::oracle::check_trace_inclusion(&checked, noisy.trace())?;
    reflex::trace::check_trace_properties(noisy.trace(), &checked.program().properties)
        .map_err(|(name, e)| format!("{name}: {e}"))?;
    println!("\nall verified properties hold on the runs ✓");
    Ok(())
}
