//! The paper's running example (§2): a privilege-separated SSH server.
//!
//! Verifies all five Figure 6 `ssh` properties, then simulates a full
//! session — two bad passwords, a good one, a PTY handshake, and a brute
//! force attempt that the three-attempt limit stops.
//!
//! ```sh
//! cargo run --example ssh_server
//! ```

use reflex::ast::Value;
use reflex::runtime::{EmptyWorld, Interpreter, Registry, ScriptedBehavior};
use reflex::trace::{Action, Msg};
use reflex::verify::{check_certificate, prove_all, ProverOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checked = reflex::kernels::ssh::checked();
    println!(
        "=== SSH kernel ({} lines of Reflex) ===",
        reflex::kernels::ssh::SOURCE
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    );

    // Verify everything, pushbutton.
    let options = ProverOptions::default();
    for (name, outcome) in prove_all(&checked, &options) {
        let cert = outcome
            .certificate()
            .unwrap_or_else(|| panic!("{name} should verify: {:?}", outcome.failure()));
        check_certificate(&checked, cert, &options)?;
        println!("  proved {name} ({} obligations)", cert.obligation_count());
    }

    // Scripted components: a password checker that accepts alice/hunter2
    // and a PTY allocator.
    let registry = Registry::new()
        .register("ssh-pass-auth.c", |_| {
            Box::new(ScriptedBehavior::new().replies("CheckPass", |m| {
                let (user, pass) = (&m.args[1], &m.args[2]);
                if *user == Value::from("alice") && *pass == Value::from("hunter2") {
                    vec![Msg::new("PassOk", [user.clone()])]
                } else {
                    vec![Msg::new("PassFail", [user.clone()])]
                }
            }))
        })
        .register("ssh-pty-alloc.c", |_| {
            Box::new(ScriptedBehavior::new().replies("CreatePty", |m| {
                vec![Msg::new(
                    "PtyCreated",
                    [m.args[0].clone(), Value::Fdesc(reflex::ast::Fdesc::new(7))],
                )]
            }))
        });
    let mut kernel = Interpreter::new(&checked, registry, Box::new(EmptyWorld), 1234)?;
    let client = kernel.components_of("Client")[0].id;

    println!("\n=== session ===");
    for (user, pass) in [
        ("alice", "password"),
        ("alice", "letmein"),
        ("alice", "hunter2"),
        ("alice", "hunter2"), // 4th: over the limit, silently dropped
    ] {
        kernel.inject(
            client,
            Msg::new("LoginReq", [Value::from(user), Value::from(pass)]),
        )?;
        kernel.run(8)?;
        println!(
            "  login {user}/{pass}: attempts={} auth_ok={}",
            kernel.state_var("attempts").unwrap(),
            kernel.state_var("auth_ok").unwrap()
        );
    }

    kernel.inject(client, Msg::new("PtyReq", [Value::from("alice")]))?;
    kernel.run(8)?;
    let pty = kernel.trace().iter_chrono().find_map(|a| match a {
        Action::Send { comp, msg } if comp.ctype == "Client" && msg.name == "PtyHandle" => {
            Some(msg.args[1].clone())
        }
        _ => None,
    });
    println!("  pty handed to client: {:?}", pty.expect("pty delivered"));

    // Soundness oracles on the actual run.
    reflex::runtime::oracle::check_trace_inclusion(&checked, kernel.trace())?;
    reflex::trace::check_trace_properties(kernel.trace(), &checked.program().properties)
        .map_err(|(name, e)| format!("{name}: {e}"))?;
    println!(
        "\ntrace of {} actions ⊆ BehAbs; all verified properties hold on it ✓",
        kernel.trace().len()
    );
    Ok(())
}
